/// Reproduces **Figure 6**: relative running time and peak memory of the
/// optimization ladder on the huge web graphs of Benchmark Set B (left and
/// middle), and compression ratios with gap-only vs gap+interval encoding
/// (right, also Figure 10's Set-B entries).
///
/// Paper: on gsh-2015 / clueweb12 / uk-2014 / eu-2015 KaMinPar uses
/// 12.9/12.5/15.7/15.7x more memory than TeraPart; compression ratios run
/// from 5 (hyperlink) to >11 (eu-2015), and gap-only achieves just 2.7-3.4.
#include "bench_common.h"

int main() {
  using namespace terapart;
  using namespace terapart::bench;

  par::set_num_threads(bench_threads());
  MemoryTracker::global().reset();

  print_header("Figure 6 — Benchmark Set B: ladder + compression ratios",
               "Fig. 6 (web graphs, k=30000) and Fig. 10 (Set B)",
               "per-graph relative time/memory for the ladder; gap vs gap+interval ratios");

  const auto suite = gen::benchmark_set_b(gen::SuiteScale::kSmall);
  // k scaled so n/k stays in a regime where the cluster-weight rule
  // U = eps*W/k still permits real coarsening (see DESIGN.md on scale).
  const BlockID k = 64;

  for (const auto &named : suite) {
    const CsrGraph source_raw = named.build(1);
    const CsrGraph source = copy_graph(source_raw, "bench/source");
    std::printf("\n--- %s: n=%u m=%llu ---\n", named.name.c_str(), source.n(),
                static_cast<unsigned long long>(source.m()));

    std::printf("%-16s %14s %12s %10s %12s\n", "configuration", "peak memory", "rel. mem",
                "time [s]", "edge cut");
    double baseline_bytes = 0;
    double baseline_seconds = 0;
    RunMeasurement terapart;
    for (int step = 0; step < kLadderSteps; ++step) {
      const RunMeasurement run = run_ladder_step(source, step, k, 5);
      if (step == 0) {
        baseline_bytes = static_cast<double>(run.peak_bytes);
        baseline_seconds = run.seconds;
      }
      if (step == kLadderSteps - 1) {
        terapart = run;
      }
      std::printf("%-16s %14s %11.2fx %10.2f %12lld\n", ladder_name(step),
                  format_bytes(run.peak_bytes).c_str(),
                  static_cast<double>(run.peak_bytes) / baseline_bytes, run.seconds,
                  static_cast<long long>(run.cut));
    }
    std::printf("(KaMinPar / TeraPart memory factor: %.1fx; time factor: %.2fx)\n",
                baseline_bytes / std::max<double>(1, static_cast<double>(terapart.peak_bytes)),
                baseline_seconds / std::max(terapart.seconds, 1e-9));

    // Compression ratios: gap-only vs gap+interval (Figure 6 right / 10).
    CompressionConfig gap_only;
    gap_only.intervals = false;
    const CompressedGraph with_intervals = compress_graph_parallel(source, {}, "graph");
    ParallelCompressionConfig gap_config;
    gap_config.compression = gap_only;
    const CompressedGraph gaps = compress_graph_parallel(source, gap_config, "graph");
    const double csr_bytes = static_cast<double>(with_intervals.uncompressed_csr_bytes());
    std::printf("compression: gap-only %.2fx, gap+interval %.2fx (%s -> %s)\n",
                csr_bytes / static_cast<double>(gaps.memory_bytes()),
                csr_bytes / static_cast<double>(with_intervals.memory_bytes()),
                format_bytes(static_cast<std::uint64_t>(csr_bytes)).c_str(),
                format_bytes(with_intervals.memory_bytes()).c_str());
  }

  std::printf("\npaper shape: interval encoding is crucial on web graphs (ratios 5-11 vs\n"
              "2.7-3.4 gap-only); memory ladder mirrors Figure 1 per graph.\n");
  return 0;
}
