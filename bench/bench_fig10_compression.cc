/// Reproduces **Figure 10** (appendix): per-graph compression ratios of all
/// Benchmark Set A and Set B graphs — gap-only vs gap+interval encoding, and
/// the extra effect of edge-weight compression on the weighted
/// (text-compression analog) class.
///
/// Paper: ratios range from <1 (kmer_*) to 5.7 (FEM meshes) on Set A and
/// 5-11+ on the Set B web crawls; interval encoding matters most on graphs
/// with neighbor-ID locality.
#include "bench_common.h"

int main() {
  using namespace terapart;
  using namespace terapart::bench;

  par::set_num_threads(bench_threads());
  MemoryTracker::global().reset();

  print_header("Figure 10 — per-graph compression ratios",
               "Fig. 10 (Sets A and B) and Fig. 6 right",
               "ratio = uncompressed CSR bytes / compressed bytes; higher is better");

  const auto report = [](const gen::NamedGraph &named) {
    const CsrGraph graph = named.build(1);
    CompressionConfig gap_only;
    gap_only.intervals = false;
    const CompressedGraph gaps = compress_graph(graph, gap_only);
    const CompressedGraph full = compress_graph(graph);
    const double csr = static_cast<double>(full.uncompressed_csr_bytes());
    std::printf("%-16s %-10s %10.2f %12.2f %12.2f %14.2f\n", named.name.c_str(),
                named.family.c_str(), static_cast<double>(graph.m()) / 1e6,
                csr / static_cast<double>(gaps.memory_bytes()),
                csr / static_cast<double>(full.memory_bytes()),
                static_cast<double>(full.used_bytes()) / static_cast<double>(graph.m()));
  };

  std::printf("%-16s %-10s %10s %12s %12s %14s\n", "graph", "family", "m [M]", "gap-only",
              "gap+interval", "bytes/edge");
  std::printf("--- Benchmark Set A ---\n");
  for (const auto &named : gen::benchmark_set_a(gen::SuiteScale::kSmall)) {
    report(named);
  }
  std::printf("--- Benchmark Set B ---\n");
  for (const auto &named : gen::benchmark_set_b(gen::SuiteScale::kSmall)) {
    report(named);
  }

  std::printf("\npaper shape: kmer-class ratios ~1 (incompressible), meshes/web the best;\n"
              "interval encoding adds the most on locality-rich graphs; weighted graphs\n"
              "(text class) compress worse per edge because weights share the stream.\n");
  return 0;
}
