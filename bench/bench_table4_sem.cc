/// Reproduces **Table IV** (TeraPart vs the semi-external algorithm of
/// Akhremtsev et al. [35], k=16) and the **Section VII** streaming
/// comparison (HeiStream cuts 3.1x-14.8x more edges).
///
/// Paper Table IV: SEM is ~7x-11x slower than TeraPart with somewhat worse
/// cuts (1.05x-1.4x) and comparable-or-higher memory.
#include "bench_common.h"

#include <unistd.h>

#include <filesystem>

#include "baselines/heistream_like.h"
#include "baselines/semi_external.h"
#include "graph/graph_io.h"
#include "partition/facade.h"

int main() {
  using namespace terapart;
  using namespace terapart::bench;
  namespace fs = std::filesystem;

  par::set_num_threads(bench_threads());
  MemoryTracker::global().reset();

  print_header("Table IV — TeraPart vs semi-external (SEM); Section VII — streaming",
               "Table IV (k=16, web graphs) and Sec. VII (HeiStream)",
               "cut / time / memory of in-memory vs semi-external vs streaming");

  const BlockID k = 16;
  const fs::path dir = fs::temp_directory_path();

  // Table IV analogs of arabic-2005 / uk-2002 / sk-2005 / uk-2007.
  struct Instance {
    const char *name;
    CsrGraph graph;
  };
  std::vector<Instance> instances;
  instances.push_back({"arabic-2005*", gen::weblike(20'000, 22, 1, 0.8, 96)});
  instances.push_back({"uk-2002*", gen::weblike(16'000, 18, 2, 0.85, 128)});
  instances.push_back({"sk-2005*", gen::weblike(24'000, 28, 3, 0.75, 64)});
  instances.push_back({"uk-2007*", gen::weblike(32'000, 24, 4, 0.85, 96)});

  std::printf("%-14s %-10s %12s %10s %12s %8s\n", "graph", "algorithm", "cut", "time [s]",
              "memory", "passes");
  for (const auto &instance : instances) {
    const CsrGraph source = copy_graph(instance.graph, "bench/source");
    const fs::path path =
        dir / (std::string("terapart_bench_") + std::to_string(::getpid()) + ".tpg");
    io::write_tpg(path, source);

    // TeraPart, in memory (compressed input).
    const CompressedGraph input = compress_graph_parallel(source, {}, "graph");
    const std::uint64_t excluded = MemoryTracker::global().current("bench/source");
    const RunMeasurement terapart = measured_partition(input, terapart_context(k, 3), excluded);

    // SEM from disk.
    MemoryTracker::global().reset_peak();
    Timer sem_timer;
    const auto sem = baselines::semi_external_partition(path, k, 0.03, 3);
    const double sem_seconds = sem_timer.elapsed_s();
    const std::uint64_t sem_peak = MemoryTracker::global().peak() - excluded;

    std::printf("%-14s %-10s %12lld %10.2f %12s %8s\n", instance.name, "TeraPart",
                static_cast<long long>(terapart.cut), terapart.seconds,
                format_bytes(terapart.peak_bytes).c_str(), "1");
    std::printf("%-14s %-10s %12lld %10.2f %12s %8llu\n", "", "SEM",
                static_cast<long long>(sem.result.cut), sem_seconds,
                format_bytes(sem_peak).c_str(),
                static_cast<unsigned long long>(sem.graph_passes));
    fs::remove(path);
  }

  // Section VII: streaming (HeiStream proxy) vs TeraPart on the tera-scale
  // generator families, k = 30000 in the paper -> scaled k here.
  std::printf("\nSection VII — buffered streaming (HeiStream*) vs TeraPart, k=64:\n");
  std::printf("%-8s %16s %16s %10s\n", "family", "TeraPart cut", "HeiStream* cut", "factor");
  const BlockID stream_k = 64;
  for (const auto &spec : {"rgg2d:n=60000,deg=16", "rhg:n=60000,deg=16,gamma=3.0"}) {
    const CsrGraph graph = gen::by_spec(spec, 9);
    Context ctx = terapart_context(stream_k, 3);
    const PartitionResult multilevel = Partitioner(ctx).partition(graph);
    const PartitionResult streaming =
        baselines::heistream_like_partition(graph, stream_k, 0.03, 3);
    std::printf("%-8s %16lld %16lld %9.2fx\n",
                std::string(spec).substr(0, std::string(spec).find(':')).c_str(),
                static_cast<long long>(multilevel.cut),
                static_cast<long long>(streaming.cut),
                static_cast<double>(streaming.cut) / std::max<double>(1, multilevel.cut));
  }

  std::printf("\npaper shape: SEM ~an order of magnitude slower with worse cuts; streaming\n"
              "cuts 3.1x (rgg2D) to 14.8x (rhg) more edges than the multilevel method.\n");
  return 0;
}
