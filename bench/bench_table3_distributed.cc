/// Reproduces **Table III + Figure 8 (left/middle)**: XTeraPart vs
/// dKaMinPar, the ParMETIS proxy, and the XtraPuLP proxy on growing rgg2D
/// and rhg graphs with a fixed number of (simulated) compute nodes.
///
/// Paper: on 8 nodes, XTeraPart handles graphs up to 2^40 edges; plain
/// dKaMinPar is limited to graphs 8x smaller (4.5-4.8x more memory per
/// rank); ParMETIS/XtraPuLP fail 64x earlier, and XtraPuLP's cuts are
/// 5.6x-68x worse. Here the graph sizes double across a feasible range and
/// the per-rank memory model + cut ratios reproduce the ordering.
#include "bench_common.h"

#include "baselines/metis_like.h"
#include "baselines/xtrapulp_like.h"
#include "distributed/dist_partitioner.h"

int main() {
  using namespace terapart;
  using namespace terapart::bench;

  par::set_num_threads(bench_threads());
  MemoryTracker::global().reset();

  print_header("Table III / Figure 8 (left, middle) — distributed comparison",
               "Table III + Fig. 8 (rgg2D / rhg, 8 nodes, k=64)",
               "XTeraPart vs dKaMinPar vs ParMETIS* vs XtraPuLP* on doubling graph sizes");

  const int num_ranks = 8;
  const BlockID k = 64;
  const Context ctx = terapart_context(k, 3);

  struct Family {
    const char *name;
    CsrGraph (*build)(NodeID, std::uint64_t);
  };
  const Family families[] = {
      {"rgg2D", [](const NodeID n, const std::uint64_t seed) { return gen::rgg2d(n, 16, seed); }},
      {"rhg", [](const NodeID n, const std::uint64_t seed) {
         return gen::rhg(n, 16, 3.0, seed);
       }}};

  for (const auto &family : families) {
    std::printf("\n--- %s family, %d simulated ranks ---\n", family.name, num_ranks);
    std::printf("%-10s %-12s %10s %10s %10s %14s\n", "n", "algorithm", "cut/m", "rel. XTP",
                "time [s]", "max rank mem");
    for (const NodeID n : {4'000u, 8'000u, 16'000u, 32'000u}) {
      const CsrGraph graph = family.build(n, 5);
      const double undirected_m = static_cast<double>(graph.m()) / 2.0;

      Timer xt_timer;
      const auto xterapart = dist::dist_partition(graph, num_ranks, ctx, /*compress=*/true);
      const double xt_seconds = xt_timer.elapsed_s();

      Timer dk_timer;
      const auto dkaminpar = dist::dist_partition(graph, num_ranks, ctx, /*compress=*/false);
      const double dk_seconds = dk_timer.elapsed_s();

      Timer pm_timer;
      const auto parmetis = baselines::metis_like_partition(graph, k, 0.03, 5);
      const double pm_seconds = pm_timer.elapsed_s();

      Timer xp_timer;
      const auto xtrapulp = baselines::xtrapulp_like_partition(graph, k, 0.03, 5);
      const double xp_seconds = xp_timer.elapsed_s();

      std::printf("%-10u %-12s %9.2f%% %10s %10.2f %14s\n", n, "XTeraPart",
                  100.0 * static_cast<double>(xterapart.cut) / undirected_m, "1.00x",
                  xt_seconds, format_bytes(xterapart.max_rank_memory).c_str());
      const auto rel = [&](const EdgeWeight cut) {
        return static_cast<double>(cut) / std::max<double>(1, xterapart.cut);
      };
      std::printf("%-10s %-12s %10s %9.2fx %10.2f %14s\n", "", "dKaMinPar", "",
                  rel(dkaminpar.cut), dk_seconds,
                  format_bytes(dkaminpar.max_rank_memory).c_str());
      std::printf("%-10s %-12s %10s %9.2fx %10.2f %14s%s\n", "", "ParMETIS*", "",
                  rel(parmetis.cut), pm_seconds, "-",
                  parmetis.balanced ? "" : "  (imbalanced)");
      std::printf("%-10s %-12s %10s %9.2fx %10.2f %14s%s\n", "", "XtraPuLP*", "",
                  rel(xtrapulp.cut), xp_seconds, "-",
                  xtrapulp.balanced ? "" : "  (imbalanced)");
    }
  }

  std::printf("\npaper shape: XTeraPart needs ~4.5-4.8x less rank memory than dKaMinPar at\n"
              "matching cuts; ParMETIS ~1x cut where it runs; XtraPuLP 5.6x-68x worse\n"
              "cuts (worst on rhg). Cut/m decreases with graph size on both families.\n");
  return 0;
}
