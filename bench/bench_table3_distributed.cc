/// Reproduces **Table III + Figure 8 (left/middle)**: XTeraPart vs
/// dKaMinPar, the ParMETIS proxy, and the XtraPuLP proxy on growing rgg2D
/// and rhg graphs with a fixed number of (simulated) compute nodes.
///
/// Paper: on 8 nodes, XTeraPart handles graphs up to 2^40 edges; plain
/// dKaMinPar is limited to graphs 8x smaller (4.5-4.8x more memory per
/// rank); ParMETIS/XtraPuLP fail 64x earlier, and XtraPuLP's cuts are
/// 5.6x-68x worse. Here the graph sizes double across a feasible range and
/// the per-rank memory model + cut ratios reproduce the ordering.
///
/// `--comm` switches to the message-layer comparison: the same partitions
/// run over the synchronous superstep schedule and over the asynchronous
/// buffered channel (varint-compressed batches, opportunistic drains), and
/// the table reports logical vs wire volume, batching, and overlap.
/// `--json <path>` (with `--comm`) writes a terapart.run_report/v1 document
/// with a "comm" section.
#include "bench_common.h"

#include <string_view>

#include "baselines/metis_like.h"
#include "baselines/xtrapulp_like.h"
#include "common/metrics_registry.h"
#include "common/run_report.h"
#include "distributed/dist_partitioner.h"

namespace {

using namespace terapart;
using namespace terapart::bench;

json::Value comm_to_json(const dist::CommStats &stats) {
  json::Value out = json::Value::object();
  out["supersteps"] = stats.supersteps;
  out["messages"] = stats.messages;
  out["logical_bytes"] = stats.bytes;
  out["wire_bytes"] = stats.wire_bytes;
  out["batches"] = stats.batches;
  out["capacity_flushes"] = stats.capacity_flushes;
  out["delivered"] = stats.delivered;
  out["early_messages"] = stats.early_messages;
  out["wire_ratio"] = stats.wire_ratio();
  out["overlap_ratio"] = stats.overlap_ratio();
  return out;
}

int run_comm_comparison(const char *json_path) {
  print_header("Message layer — sync supersteps vs async buffered exchange",
               "Section VI-C comm model (rgg2D / rhg, 8 nodes, k=64)",
               "same partition pipeline over both transports; volume is logical "
               "(struct) vs wire (varint) bytes");

  const int num_ranks = 8;
  const BlockID k = 64;
  const Context ctx = terapart_context(k, 3);

  dist::DistCommConfig sync_comm;   // one batch per pair, barrier delivery
  dist::DistCommConfig async_comm;  // capacity flushes + opportunistic drains
  async_comm.async = true;

  struct Family {
    const char *name;
    CsrGraph (*build)(NodeID, std::uint64_t);
  };
  const Family families[] = {
      {"rgg2D", [](const NodeID n, const std::uint64_t seed) { return gen::rgg2d(n, 16, seed); }},
      {"rhg", [](const NodeID n, const std::uint64_t seed) {
         return gen::rhg(n, 16, 3.0, seed);
       }}};

  json::Value bench_section = json::Value::array();
  std::printf("%-8s %-7s %8s %6s %10s %10s %7s %8s %8s %8s\n", "graph", "mode", "cut", "steps",
              "logical", "wire", "ratio", "batches", "capflush", "overlap");
  for (const auto &family : families) {
    const NodeID n = 16'000;
    const CsrGraph graph = family.build(n, 5);

    const auto sync_run = dist::dist_partition(graph, num_ranks, ctx, /*compress=*/true,
                                               sync_comm);
    const auto async_run = dist::dist_partition(graph, num_ranks, ctx, /*compress=*/true,
                                                async_comm);

    const auto row = [&](const char *mode, const dist::DistPartitionResult &run) {
      std::printf("%-8s %-7s %8lld %6llu %10s %10s %6.2fx %8llu %8llu %7.1f%%\n", family.name,
                  mode, static_cast<long long>(run.cut),
                  static_cast<unsigned long long>(run.comm.supersteps),
                  format_bytes(run.comm.bytes).c_str(),
                  format_bytes(run.comm.wire_bytes).c_str(), run.comm.wire_ratio(),
                  static_cast<unsigned long long>(run.comm.batches),
                  static_cast<unsigned long long>(run.comm.capacity_flushes),
                  100.0 * run.comm.overlap_ratio());
    };
    row("sync", sync_run);
    row("async", async_run);

    json::Value entry = json::Value::object();
    entry["graph"] = family.name;
    entry["n"] = n;
    entry["ranks"] = num_ranks;
    entry["k"] = k;
    entry["sync_cut"] = static_cast<std::int64_t>(sync_run.cut);
    entry["async_cut"] = static_cast<std::int64_t>(async_run.cut);
    entry["sync"] = comm_to_json(sync_run.comm);
    entry["async"] = comm_to_json(async_run.comm);
    bench_section.push_back(std::move(entry));
  }

  std::printf("\nexpected shape: identical supersteps (the round structure is fixed); the\n"
              "varint wire format carries >= 1.3x less volume than raw structs; only the\n"
              "async rows batch eagerly (capacity flushes) and drain early (overlap > 0).\n");

  if (json_path != nullptr) {
    RunReport report("bench_table3_distributed");
    report.add_section("comm", std::move(bench_section));
    report.capture_metrics(MetricsRegistry::global());
    if (!report.write(json_path)) {
      std::fprintf(stderr, "failed to write %s\n", json_path);
      return 1;
    }
    std::printf("wrote %s\n", json_path);
  }
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  using namespace terapart;
  using namespace terapart::bench;

  bool comm_mode = false;
  const char *json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--comm") {
      comm_mode = true;
    } else if (std::string_view(argv[i]) == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    }
  }

  par::set_num_threads(bench_threads());
  MemoryTracker::global().reset();

  if (comm_mode) {
    return run_comm_comparison(json_path);
  }

  print_header("Table III / Figure 8 (left, middle) — distributed comparison",
               "Table III + Fig. 8 (rgg2D / rhg, 8 nodes, k=64)",
               "XTeraPart vs dKaMinPar vs ParMETIS* vs XtraPuLP* on doubling graph sizes");

  const int num_ranks = 8;
  const BlockID k = 64;
  const Context ctx = terapart_context(k, 3);

  struct Family {
    const char *name;
    CsrGraph (*build)(NodeID, std::uint64_t);
  };
  const Family families[] = {
      {"rgg2D", [](const NodeID n, const std::uint64_t seed) { return gen::rgg2d(n, 16, seed); }},
      {"rhg", [](const NodeID n, const std::uint64_t seed) {
         return gen::rhg(n, 16, 3.0, seed);
       }}};

  for (const auto &family : families) {
    std::printf("\n--- %s family, %d simulated ranks ---\n", family.name, num_ranks);
    std::printf("%-10s %-12s %10s %10s %10s %14s\n", "n", "algorithm", "cut/m", "rel. XTP",
                "time [s]", "max rank mem");
    for (const NodeID n : {4'000u, 8'000u, 16'000u, 32'000u}) {
      const CsrGraph graph = family.build(n, 5);
      const double undirected_m = static_cast<double>(graph.m()) / 2.0;

      Timer xt_timer;
      const auto xterapart = dist::dist_partition(graph, num_ranks, ctx, /*compress=*/true);
      const double xt_seconds = xt_timer.elapsed_s();

      Timer dk_timer;
      const auto dkaminpar = dist::dist_partition(graph, num_ranks, ctx, /*compress=*/false);
      const double dk_seconds = dk_timer.elapsed_s();

      Timer pm_timer;
      const auto parmetis = baselines::metis_like_partition(graph, k, 0.03, 5);
      const double pm_seconds = pm_timer.elapsed_s();

      Timer xp_timer;
      const auto xtrapulp = baselines::xtrapulp_like_partition(graph, k, 0.03, 5);
      const double xp_seconds = xp_timer.elapsed_s();

      std::printf("%-10u %-12s %9.2f%% %10s %10.2f %14s\n", n, "XTeraPart",
                  100.0 * static_cast<double>(xterapart.cut) / undirected_m, "1.00x",
                  xt_seconds, format_bytes(xterapart.max_rank_memory).c_str());
      const auto rel = [&](const EdgeWeight cut) {
        return static_cast<double>(cut) / std::max<double>(1, xterapart.cut);
      };
      std::printf("%-10s %-12s %10s %9.2fx %10.2f %14s\n", "", "dKaMinPar", "",
                  rel(dkaminpar.cut), dk_seconds,
                  format_bytes(dkaminpar.max_rank_memory).c_str());
      std::printf("%-10s %-12s %10s %9.2fx %10.2f %14s%s\n", "", "ParMETIS*", "",
                  rel(parmetis.cut), pm_seconds, "-",
                  parmetis.balanced ? "" : "  (imbalanced)");
      std::printf("%-10s %-12s %10s %9.2fx %10.2f %14s%s\n", "", "XtraPuLP*", "",
                  rel(xtrapulp.cut), xp_seconds, "-",
                  xtrapulp.balanced ? "" : "  (imbalanced)");
    }
  }

  std::printf("\npaper shape: XTeraPart needs ~4.5-4.8x less rank memory than dKaMinPar at\n"
              "matching cuts; ParMETIS ~1x cut where it runs; XtraPuLP 5.6x-68x worse\n"
              "cuts (worst on rhg). Cut/m decreases with graph size on both families.\n");
  return 0;
}
