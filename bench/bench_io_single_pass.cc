/// Reproduces the **Section VI methodology experiment** on graph loading:
/// on eu-2015 the paper measures 2905 s (sequential, compress-on-load) vs
/// 572 s (sequential, raw) — a 5x overhead — but with 96 cores the times
/// converge to 179 s vs 177 s: parallel packet compression hides the codec
/// behind the I/O stream, which is why TeraPart can afford single-pass
/// compressing input without a second disk pass.
///
/// Here: a TPG file on tmpfs-backed storage, loaded (a) raw, (b) compressed
/// sequentially, (c) compressed with growing thread counts. The expected
/// shape: sequential compression costs a multiple of the raw load; the
/// parallel overhead shrinks toward the raw-load time as p grows (bounded
/// on this machine by the single physical core, see DESIGN.md).
#include "bench_common.h"

#include <unistd.h>

#include <filesystem>

#include "graph/graph_io.h"

int main() {
  using namespace terapart;
  using namespace terapart::bench;
  namespace fs = std::filesystem;

  MemoryTracker::global().reset();
  print_header("Section VI (methodology) — single-pass compressing I/O",
               "eu-2015 load: 2905 s/572 s sequential vs 179 s/177 s on 96 cores",
               "raw load vs compress-on-load, sequential and parallel");

  const CsrGraph graph = gen::weblike(200'000, 24, 1, 0.85, 128);
  const fs::path path =
      fs::temp_directory_path() / ("terapart_io_" + std::to_string(::getpid()) + ".tpg");
  io::write_tpg(path, graph);
  std::printf("graph: weblike n=%u m=%llu, file %s (%.1f MiB)\n\n", graph.n(),
              static_cast<unsigned long long>(graph.m()), path.filename().c_str(),
              static_cast<double>(fs::file_size(path)) / (1024.0 * 1024.0));

  const int repetitions = 3;

  // (a) Raw uncompressed load.
  double raw_seconds = 1e300;
  for (int rep = 0; rep < repetitions; ++rep) {
    Timer timer;
    const CsrGraph loaded = io::read_tpg(path, "bench/io");
    raw_seconds = std::min(raw_seconds, timer.elapsed_s());
  }
  std::printf("%-34s %8.3f s   1.00x\n", "raw load (CSR)", raw_seconds);

  // (b, c) Compress-on-load at growing p.
  for (const int threads : {1, 2, 4, 8}) {
    par::set_num_threads(threads);
    double seconds = 1e300;
    std::uint64_t compressed_bytes = 0;
    for (int rep = 0; rep < repetitions; ++rep) {
      Timer timer;
      const CompressedGraph loaded = compress_tpg_single_pass(path, {}, "bench/io");
      seconds = std::min(seconds, timer.elapsed_s());
      compressed_bytes = loaded.memory_bytes();
    }
    char label[64];
    std::snprintf(label, sizeof(label), "compress-on-load, p=%d", threads);
    std::printf("%-34s %8.3f s  %5.2fx   (-> %s in memory)\n", label, seconds,
                seconds / raw_seconds, format_bytes(compressed_bytes).c_str());
  }

  // Put the codec cost in disk terms: if compression ingests bytes faster
  // than the storage can deliver them, the parallel pipeline hides it
  // entirely — the paper's 179 s vs 177 s result.
  par::set_num_threads(bench_threads());
  Timer throughput_timer;
  const CompressedGraph loaded = compress_tpg_single_pass(path, {}, "bench/io");
  const double seconds = throughput_timer.elapsed_s();
  const double bytes_per_second = static_cast<double>(fs::file_size(path)) / seconds;
  std::printf("\ncompression ingest rate: %.0f MiB/s of raw CSR (m = %.1f M edges/s);\n"
              "a single NVMe stream delivers ~1-3 GiB/s, i.e. ~4-12 such threads hide\n"
              "the codec behind the disk — the paper's convergence at p=96.\n",
              bytes_per_second / (1024.0 * 1024.0),
              static_cast<double>(loaded.m()) / seconds / 1e6);

  fs::remove(path);
  std::printf("\npaper shape: sequential compression costs a multiple of a raw *page-cache*\n"
              "load (the raw numbers here are cache-bound, not disk-bound); against a real\n"
              "disk the paper measures 5x sequentially and ~0 overhead at p=96. The\n"
              "single-pass protocol (ordered packet commits into overcommitted memory) is\n"
              "fully exercised either way.\n");
  return 0;
}
