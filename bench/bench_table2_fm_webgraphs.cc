/// Reproduces **Table II**: TeraPart-LP vs TeraPart-FM on the Set B web
/// graphs for k=64 — edge cut (as % of m and relative), running time, and
/// peak memory.
///
/// Paper: FM reduces cuts to 0.87x-0.96x of LP, at 1.2x-31x the time and
/// ~2x the memory (the sparse gain table keeps FM feasible at this scale).
#include "bench_common.h"

int main() {
  using namespace terapart;
  using namespace terapart::bench;

  par::set_num_threads(bench_threads());
  MemoryTracker::global().reset();

  print_header("Table II — TeraPart-LP vs TeraPart-FM on web graphs",
               "Table II (Set B, k=64)",
               "cut %% of edges, FM cut relative to LP, time, peak memory");

  const auto suite = gen::benchmark_set_b(gen::SuiteScale::kSmall);
  const BlockID k = 64;

  std::printf("%-18s %-12s %9s %9s %9s %12s\n", "graph", "algorithm", "cut", "rel.",
              "time [s]", "memory");
  for (const auto &named : suite) {
    const CsrGraph source_raw = named.build(1);
    const CsrGraph source = copy_graph(source_raw, "bench/source");
    const CompressedGraph input = compress_graph_parallel(source, {}, "graph");
    const std::uint64_t excluded = MemoryTracker::global().current("bench/source");
    const double undirected_m = static_cast<double>(source.m()) / 2.0;

    const RunMeasurement lp = measured_partition(input, terapart_context(k, 3), excluded);
    const RunMeasurement fm = measured_partition(input, terapart_fm_context(k, 3), excluded);

    std::printf("%-18s %-12s %8.2f%% %9s %9.2f %12s\n", named.name.c_str(), "TeraPart-LP",
                100.0 * static_cast<double>(lp.cut) / undirected_m, "-", lp.seconds,
                format_bytes(lp.peak_bytes).c_str());
    std::printf("%-18s %-12s %9s %8.2fx %9.2f %12s\n", "", "TeraPart-FM", "",
                static_cast<double>(fm.cut) / std::max<double>(1, lp.cut), fm.seconds,
                format_bytes(fm.peak_bytes).c_str());
  }

  std::printf("\npaper shape: FM cuts 4-13%% fewer edges (0.87x-0.96x) at higher time and\n"
              "memory; LP cut percentages range from 0.13%% (uk-2014) to 11%% (clueweb12).\n");
  return 0;
}
