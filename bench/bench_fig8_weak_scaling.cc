/// Reproduces **Figure 8 (right)**: weak scaling of XTeraPart — the number
/// of (simulated) compute nodes grows together with the graph, keeping the
/// edges-per-node ratio fixed.
///
/// Paper: 8 -> 128 nodes with the largest feasible rgg2D/rhg graphs per step
/// (up to 2^44 edges), partitioned in under 10 minutes with flat-ish time
/// curves. Here: ranks in {1,2,4,8,16} with proportional graph sizes; the
/// expected shape is per-edge processing cost staying roughly flat while
/// communication volume grows.
#include "bench_common.h"

#include "distributed/dist_partitioner.h"

int main() {
  using namespace terapart;
  using namespace terapart::bench;

  par::set_num_threads(bench_threads());
  MemoryTracker::global().reset();

  print_header("Figure 8 (right) — weak scaling of XTeraPart",
               "Fig. 8 right (rgg2D / rhg, up to 128 nodes, 2^44 edges)",
               "fixed edges per simulated rank; time per edge should stay flat");

  const BlockID k = 64;
  const Context ctx = terapart_context(k, 3);
  const NodeID vertices_per_rank = 4'000;

  struct Family {
    const char *name;
    CsrGraph (*build)(NodeID, std::uint64_t);
  };
  const Family families[] = {
      {"rgg2D", [](const NodeID n, const std::uint64_t seed) { return gen::rgg2d(n, 16, seed); }},
      {"rhg", [](const NodeID n, const std::uint64_t seed) {
         return gen::rhg(n, 16, 3.0, seed);
       }}};

  for (const auto &family : families) {
    std::printf("\n--- %s, %u vertices per rank ---\n", family.name, vertices_per_rank);
    std::printf("%6s %10s %12s %10s %14s %12s %14s\n", "ranks", "n", "m", "time [s]",
                "us per edge", "cut/m", "comm volume");
    for (const int ranks : {1, 2, 4, 8, 16}) {
      const NodeID n = vertices_per_rank * static_cast<NodeID>(ranks);
      const CsrGraph graph = family.build(n, 7);
      Timer timer;
      const auto result = dist::dist_partition(graph, ranks, ctx, /*compress=*/true);
      const double seconds = timer.elapsed_s();
      std::printf("%6d %10u %12llu %10.2f %14.3f %11.2f%% %14s\n", ranks, graph.n(),
                  static_cast<unsigned long long>(graph.m()), seconds,
                  1e6 * seconds / static_cast<double>(graph.m()),
                  100.0 * static_cast<double>(result.cut) /
                      (static_cast<double>(graph.m()) / 2.0),
                  format_bytes(result.comm.bytes).c_str());
    }
  }

  std::printf("\npaper shape: near-flat time per step as ranks x graph grow together; cut\n"
              "fraction stays stable per family (weak scaling preserves structure).\n");
  return 0;
}
