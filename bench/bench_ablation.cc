/// Ablation studies for the design choices the paper fixes by hand
/// (DESIGN.md: "ablation benches for the design choices"):
///
///  A. **T_bump** (Section IV-A): the two-phase threshold trades first-phase
///     hash-table memory (O(p * T_bump)) against second-phase sequential
///     passes. Paper picks 10 000.
///  B. **Dual-counter batch size** (Section IV-B.2): edges buffered per
///     128-bit CAS; small batches mean contention, huge batches mean
///     imbalance at the end of the range. Paper buffers "several coarse
///     vertices".
///  C. **Chunk size** (Section III-A): decode granularity of high-degree
///     neighborhoods. Paper: chunks of 1000 for degree > 10000.
///  D. **Compressing coarse graphs**: the paper states the savings beyond
///     the input graph are negligible ("we only compress the input graph")
///     — measured here by compressing every hierarchy level.
#include "bench_common.h"

#include "coarsening/coarsener.h"
#include "coarsening/contraction.h"
#include "coarsening/lp_clustering.h"

int main() {
  using namespace terapart;
  using namespace terapart::bench;

  par::set_num_threads(bench_threads());
  MemoryTracker::global().reset();

  print_header("Ablations — T_bump / CAS batch size / chunk size / coarse compression",
               "design choices of Sections III-A, IV-A, IV-B",
               "sensitivity of time and memory to the paper's fixed parameters");

  // A skewed graph with genuinely high-degree vertices.
  const CsrGraph graph = gen::rhg(60'000, 24, 2.6, 1);
  std::printf("graph: rhg n=%u m=%llu maxdeg=%u\n", graph.n(),
              static_cast<unsigned long long>(graph.m()), graph.max_degree());

  // --- A: bump threshold ---------------------------------------------------
  std::printf("\n[A] two-phase LP bump threshold (paper: 10000)\n");
  std::printf("%10s %12s %14s %12s\n", "T_bump", "bumped", "lp aux mem", "time [s]");
  for (const NodeID bump : {8u, 32u, 128u, 1024u, 10'000u}) {
    LpClusteringConfig config;
    config.bump_threshold = bump;
    MemoryTracker::global().reset_peak();
    LpClusteringStats stats;
    Timer timer;
    const auto clustering =
        lp_cluster(graph, config, graph.total_node_weight() / 64, 3, &stats);
    (void)clustering;
    const auto aux = MemoryTracker::global().peak("lp/sparse_array") +
                     MemoryTracker::global().peak("lp/aux");
    std::printf("%10u %12llu %14s %12.3f\n", bump,
                static_cast<unsigned long long>(stats.bumped_vertices),
                format_bytes(aux).c_str(), timer.elapsed_s());
  }

  // --- B: dual-counter batch size -------------------------------------------
  std::printf("\n[B] one-pass contraction batch size (edges per CAS transaction)\n");
  std::printf("%10s %12s %12s\n", "batch", "time [s]", "coarse n");
  LpClusteringConfig lp_config;
  const auto clustering = lp_cluster(graph, lp_config, graph.total_node_weight() / 64, 3);
  for (const EdgeID batch : {1u, 16u, 256u, 4096u, 65'536u}) {
    ContractionConfig config;
    config.batch_edges = batch;
    Timer timer;
    const ContractionResult result = contract_clustering(graph, clustering, config);
    std::printf("%10llu %12.3f %12u\n", static_cast<unsigned long long>(batch),
                timer.elapsed_s(), result.graph.n());
  }

  // --- C: chunk size for high-degree decoding -------------------------------
  std::printf("\n[C] compression chunk size (high-degree threshold fixed at 64)\n");
  std::printf("%10s %14s %16s\n", "chunk", "bytes/edge", "decode [Medges/s]");
  for (const NodeID chunk : {16u, 64u, 256u, 1024u}) {
    CompressionConfig config;
    config.high_degree_threshold = 64;
    config.chunk_size = chunk;
    const CompressedGraph compressed = compress_graph(graph, config);
    Timer timer;
    std::uint64_t checksum = 0;
    for (int repeat = 0; repeat < 3; ++repeat) {
      for (NodeID u = 0; u < compressed.n(); ++u) {
        compressed.for_each_neighbor(u, [&](const NodeID v, EdgeWeight) { checksum += v; });
      }
    }
    const double seconds = timer.elapsed_s();
    std::printf("%10u %14.2f %16.1f\n", chunk,
                static_cast<double>(compressed.used_bytes()) /
                    static_cast<double>(graph.m()),
                3.0 * static_cast<double>(graph.m()) / seconds / 1e6);
    (void)checksum;
  }

  // --- D: would compressing coarse graphs help? ------------------------------
  std::printf("\n[D] compressing coarse levels (paper: negligible, hence input-only)\n");
  CoarseningConfig coarsening;
  const GraphHierarchy hierarchy = coarsen(graph, coarsening, 64, 3);
  const CompressedGraph input = compress_graph(graph);
  std::printf("%8s %10s %14s %14s %9s\n", "level", "n", "CSR bytes", "compressed", "ratio");
  std::printf("%8s %10u %14s %14s %8.1fx\n", "input", graph.n(),
              format_bytes(graph.memory_bytes()).c_str(),
              format_bytes(input.memory_bytes()).c_str(),
              static_cast<double>(graph.memory_bytes()) /
                  static_cast<double>(input.memory_bytes()));
  std::uint64_t coarse_csr = 0;
  std::uint64_t coarse_compressed = 0;
  for (std::size_t level = 0; level < hierarchy.num_levels(); ++level) {
    const CsrGraph &coarse = hierarchy.graphs[level];
    const CompressedGraph compressed = compress_graph(coarse);
    coarse_csr += coarse.memory_bytes();
    coarse_compressed += compressed.memory_bytes();
    std::printf("%8zu %10u %14s %14s %8.1fx\n", level, coarse.n(),
                format_bytes(coarse.memory_bytes()).c_str(),
                format_bytes(compressed.memory_bytes()).c_str(),
                static_cast<double>(coarse.memory_bytes()) /
                    static_cast<double>(compressed.memory_bytes()));
  }
  std::printf("all coarse levels together: %s CSR vs %s compressed — %.0f%% of the\n"
              "input graph's own saving, confirming the paper's input-only choice.\n",
              format_bytes(coarse_csr).c_str(), format_bytes(coarse_compressed).c_str(),
              100.0 * static_cast<double>(coarse_csr - coarse_compressed) /
                  static_cast<double>(std::max<std::uint64_t>(
                      1, graph.memory_bytes() - input.memory_bytes())));
  return 0;
}
