/// Microbenchmarks (google-benchmark) for the core data structures: rating
/// maps (fixed hash vs sparse array), the shared aggregator under
/// multi-thread contention (direct flat-atomic baseline vs buffered-flat vs
/// sharded), the dual counter vs two plain atomics, and gain-table
/// query/update throughput (dense vs sparse).
///
/// `--json <path>` writes a terapart.run_report/v1 document with a
/// "benchmarks" section (same schema as the other bench binaries); `--smoke`
/// shrinks measurement time for CI. The contended aggregator benchmarks run
/// their workers on the repo's own thread pool (the aggregators key their
/// thread-local buffers by pool thread id), so the `threads` argument
/// re-sizes the global pool rather than using google-benchmark's threading.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "coarsening/rating_map.h"
#include "common/memory_tracker.h"
#include "common/metrics_registry.h"
#include "common/random.h"
#include "common/run_report.h"
#include "generators/generators.h"
#include "parallel/dual_counter.h"
#include "parallel/parallel_for.h"
#include "parallel/thread_local_storage.h"
#include "parallel/thread_pool.h"
#include "partition/partitioned_graph.h"
#include "refinement/dense_gain_table.h"
#include "refinement/sparse_gain_table.h"

namespace {

using namespace terapart;

void BM_FixedHashMapAggregate(benchmark::State &state) {
  const auto distinct = static_cast<std::uint32_t>(state.range(0));
  Random rng(1);
  std::vector<std::uint32_t> keys(1024);
  for (auto &key : keys) {
    key = static_cast<std::uint32_t>(rng.next_bounded(distinct));
  }
  FixedHashMap<std::uint32_t, EdgeWeight> map(distinct);
  for (auto _ : state) {
    map.clear();
    for (const std::uint32_t key : keys) {
      benchmark::DoNotOptimize(map.add(key, 1));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_FixedHashMapAggregate)->Arg(8)->Arg(64)->Arg(1024);

void BM_SparseRatingMapAggregate(benchmark::State &state) {
  const auto distinct = static_cast<std::uint32_t>(state.range(0));
  Random rng(1);
  std::vector<std::uint32_t> keys(1024);
  for (auto &key : keys) {
    key = static_cast<std::uint32_t>(rng.next_bounded(distinct));
  }
  SparseRatingMap map(1 << 20, "bench"); // n-sized array, the classic layout
  for (auto _ : state) {
    map.clear();
    for (const std::uint32_t key : keys) {
      map.add(key, 1);
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_SparseRatingMapAggregate)->Arg(8)->Arg(64)->Arg(1024);

// --- Contended shared aggregation: flat-atomic baseline vs buffered/sharded -
//
// The workload models the second phase of two-phase LP: every pool thread
// streams cluster keys into a shared O(n) aggregation array. `distinct`
// controls the key range: a small range keeps all traffic on few cache lines
// / shards (the hot-cluster case of power-law graphs), the full range
// scatters it. Three variants:
//   - direct:  the naive flat-atomic baseline — one lock-prefixed RMW on the
//     shared array per *add* (plus a first-setter claim).
//   - flat:    per-thread contention buffers, flushed with one atomic RMW per
//     buffered *entry* (duplicates already combined).
//   - sharded: the same buffers, flushed shard-by-shard with plain adds under
//     one lock acquisition per touched shard.

constexpr std::size_t kAggSize = 1 << 20;
constexpr std::size_t kAggBufferCapacity = 1024;
constexpr std::size_t kAggOpsPerWorker = 1 << 15;

/// The naive shared aggregation structure the buffered designs replace:
/// every add is a relaxed fetch_add on the shared array; the zero->nonzero
/// transition claims the key into a per-thread first-setter list so
/// iteration and touched-only clear stay possible.
class DirectAtomicAggregator {
public:
  DirectAtomicAggregator(const std::size_t size, const std::size_t /*buffer_capacity*/,
                         std::string /*category*/)
      : _values(size) {}

  void add(const ClusterID cluster, const EdgeWeight delta) {
    if (_values[cluster].fetch_add(delta, std::memory_order_relaxed) == 0) {
      _touched.local().push_back(cluster);
    }
  }

  void flush_local() {}

  template <typename Fn> void for_each(Fn &&fn) const {
    _touched.for_each([&](const std::vector<ClusterID> &list) {
      for (const ClusterID cluster : list) {
        fn(cluster, _values[cluster].load(std::memory_order_relaxed));
      }
    });
  }

  void clear() {
    _touched.for_each([&](std::vector<ClusterID> &list) {
      for (const ClusterID cluster : list) {
        _values[cluster].store(0, std::memory_order_relaxed);
      }
      list.clear();
    });
  }

private:
  std::vector<std::atomic<EdgeWeight>> _values;
  par::ThreadLocal<std::vector<ClusterID>> _touched;
};

const std::vector<std::uint32_t> &contended_keys(const std::size_t worker,
                                                 const std::uint32_t distinct) {
  // Deterministic per-(worker, distinct) key streams, generated once.
  static std::vector<std::vector<std::uint32_t>> cache[3];
  const int slot = distinct == kAggSize ? 2 : (distinct == 4096 ? 1 : 0);
  auto &streams = cache[slot];
  if (streams.size() <= worker) {
    streams.resize(worker + 1);
  }
  if (streams[worker].empty()) {
    Random rng(1000 + 7919 * worker + slot);
    streams[worker].resize(kAggOpsPerWorker);
    for (auto &key : streams[worker]) {
      key = static_cast<std::uint32_t>(rng.next_bounded(distinct));
    }
  }
  return streams[worker];
}

template <typename Aggregator> void contended_aggregate(benchmark::State &state) {
  const int threads = static_cast<int>(state.range(0));
  const auto distinct = static_cast<std::uint32_t>(state.range(1));
  par::set_num_threads(threads);
  for (int w = 0; w < threads; ++w) {
    (void)contended_keys(static_cast<std::size_t>(w), distinct); // pre-generate
  }
  Aggregator aggregator(kAggSize, kAggBufferCapacity, "bench");
  for (auto _ : state) {
    par::parallel_for_each<unsigned>(0u, static_cast<unsigned>(threads), [&](const unsigned w) {
      const std::vector<std::uint32_t> &keys =
          contended_keys(static_cast<std::size_t>(w), distinct);
      for (const std::uint32_t key : keys) {
        aggregator.add(key, 1);
      }
      aggregator.flush_local();
    });
    EdgeWeight sum = 0;
    aggregator.for_each([&](const ClusterID, const EdgeWeight rating) { sum += rating; });
    benchmark::DoNotOptimize(sum);
    aggregator.clear();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * threads *
                          static_cast<std::int64_t>(kAggOpsPerWorker));
}

void BM_DirectAtomicContended(benchmark::State &state) {
  contended_aggregate<DirectAtomicAggregator>(state);
}
BENCHMARK(BM_DirectAtomicContended)
    ->ArgsProduct({{1, 4, 8}, {512, 4096, kAggSize}})
    ->ArgNames({"threads", "distinct"})
    ->UseRealTime();

void BM_FlatAggregatorContended(benchmark::State &state) {
  contended_aggregate<SharedSparseAggregator>(state);
}
BENCHMARK(BM_FlatAggregatorContended)
    ->ArgsProduct({{1, 4, 8}, {512, 4096, kAggSize}})
    ->ArgNames({"threads", "distinct"})
    ->UseRealTime();

void BM_ShardedAggregatorContended(benchmark::State &state) {
  contended_aggregate<ShardedSparseAggregator>(state);
  ShardedSparseAggregator probe(kAggSize, kAggBufferCapacity, "bench");
  state.counters["shards"] = static_cast<double>(probe.num_shards());
  state.counters["shard_values"] = static_cast<double>(probe.shard_values());
}
BENCHMARK(BM_ShardedAggregatorContended)
    ->ArgsProduct({{1, 4, 8}, {512, 4096, kAggSize}})
    ->ArgNames({"threads", "distinct"})
    ->UseRealTime();

void BM_DualCounterFetchAdd(benchmark::State &state) {
  par::DualCounter counter;
  for (auto _ : state) {
    benchmark::DoNotOptimize(counter.fetch_add(7, 1));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DualCounterFetchAdd);

void BM_TwoPlainAtomicsReference(benchmark::State &state) {
  std::atomic<std::uint64_t> d{0};
  std::atomic<std::uint64_t> s{0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(d.fetch_add(7, std::memory_order_relaxed));
    benchmark::DoNotOptimize(s.fetch_add(1, std::memory_order_relaxed));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TwoPlainAtomicsReference);

struct GainBenchFixture {
  CsrGraph graph = gen::rhg(10'000, 16, 3.0, 1);
  BlockID k;
  PartitionedGraph partitioned;
  std::vector<NodeID> queries;

  explicit GainBenchFixture(const BlockID k_in) : k(k_in) {
    std::vector<BlockID> partition(graph.n());
    Random rng(2);
    for (auto &b : partition) {
      b = static_cast<BlockID>(rng.next_bounded(k));
    }
    partitioned = PartitionedGraph(graph, k, std::move(partition));
    queries.resize(4096);
    for (auto &u : queries) {
      u = static_cast<NodeID>(rng.next_bounded(graph.n()));
    }
  }
};

void BM_DenseGainTableQueries(benchmark::State &state) {
  GainBenchFixture fixture(static_cast<BlockID>(state.range(0)));
  DenseGainTable table(fixture.graph.n(), fixture.k);
  table.init(fixture.graph, fixture.partitioned);
  BlockID b = 0;
  for (auto _ : state) {
    EdgeWeight sum = 0;
    for (const NodeID u : fixture.queries) {
      sum += table.connection(fixture.graph, u, b);
      b = (b + 1) % fixture.k;
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 4096);
  state.counters["table_MiB"] =
      static_cast<double>(table.memory_bytes()) / (1024.0 * 1024.0);
}
BENCHMARK(BM_DenseGainTableQueries)->Arg(8)->Arg(64)->Arg(256);

void BM_SparseGainTableQueries(benchmark::State &state) {
  GainBenchFixture fixture(static_cast<BlockID>(state.range(0)));
  SparseGainTable table(fixture.graph, fixture.k);
  table.init(fixture.graph, fixture.partitioned);
  BlockID b = 0;
  for (auto _ : state) {
    EdgeWeight sum = 0;
    for (const NodeID u : fixture.queries) {
      sum += table.connection(fixture.graph, u, b);
      b = (b + 1) % fixture.k;
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 4096);
  state.counters["table_MiB"] =
      static_cast<double>(table.memory_bytes()) / (1024.0 * 1024.0);
}
BENCHMARK(BM_SparseGainTableQueries)->Arg(8)->Arg(64)->Arg(256);

void BM_SparseGainTableMoves(benchmark::State &state) {
  GainBenchFixture fixture(static_cast<BlockID>(state.range(0)));
  SparseGainTable table(fixture.graph, fixture.k);
  table.init(fixture.graph, fixture.partitioned);
  Random rng(5);
  for (auto _ : state) {
    const NodeID u = fixture.queries[rng.next_bounded(fixture.queries.size())];
    const BlockID from = fixture.partitioned.block(u);
    const auto to = static_cast<BlockID>(rng.next_bounded(fixture.k));
    if (from != to) {
      fixture.partitioned.force_move(u, fixture.graph.node_weight(u), to);
      table.notify_move(fixture.graph, u, from, to);
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SparseGainTableMoves)->Arg(8)->Arg(256);

/// Concurrent gain-table moves on the pool: stresses the striped locks
/// (sparse) and the padded atomic rows (dense). Vertex ownership is disjoint
/// per worker (u ≡ w mod threads), mirroring parallel FM where each vertex is
/// moved by exactly one thread — so the `from` block read stays accurate.
template <typename Table> void contended_moves(benchmark::State &state, Table &table,
                                               GainBenchFixture &fixture, const int threads) {
  par::set_num_threads(threads);
  const auto stride = static_cast<NodeID>(threads);
  const NodeID slots = fixture.graph.n() / stride;
  for (auto _ : state) {
    par::parallel_for_each<unsigned>(0u, static_cast<unsigned>(threads), [&](const unsigned w) {
      Random rng(77 + w);
      for (int op = 0; op < 2048; ++op) {
        const auto u = static_cast<NodeID>(w + stride * rng.next_bounded(slots));
        const BlockID from = fixture.partitioned.block(u);
        const auto to = static_cast<BlockID>(rng.next_bounded(fixture.k));
        if (from != to) {
          fixture.partitioned.force_move(u, fixture.graph.node_weight(u), to);
          table.notify_move(fixture.graph, u, from, to);
        }
      }
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * threads * 2048);
}

void BM_DenseGainTableMovesContended(benchmark::State &state) {
  GainBenchFixture fixture(static_cast<BlockID>(state.range(1)));
  DenseGainTable table(fixture.graph.n(), fixture.k);
  table.init(fixture.graph, fixture.partitioned);
  contended_moves(state, table, fixture, static_cast<int>(state.range(0)));
}
BENCHMARK(BM_DenseGainTableMovesContended)
    ->ArgsProduct({{1, 4, 8}, {8}})
    ->ArgNames({"threads", "k"})
    ->UseRealTime();

void BM_SparseGainTableMovesContended(benchmark::State &state) {
  GainBenchFixture fixture(static_cast<BlockID>(state.range(1)));
  SparseGainTable table(fixture.graph, fixture.k);
  table.init(fixture.graph, fixture.partitioned);
  contended_moves(state, table, fixture, static_cast<int>(state.range(0)));
}
BENCHMARK(BM_SparseGainTableMovesContended)
    ->ArgsProduct({{1, 4, 8}, {8}})
    ->ArgNames({"threads", "k"})
    ->UseRealTime();

/// Console reporter that additionally collects every run into a JSON array
/// conforming to the "benchmarks" section of terapart.run_report/v1.
class CollectingReporter : public benchmark::ConsoleReporter {
public:
  void ReportRuns(const std::vector<Run> &runs) override {
    for (const Run &run : runs) {
      json::Object entry{
          {"name", run.benchmark_name()},
          {"iterations", static_cast<std::int64_t>(run.iterations)},
          {"real_time", run.GetAdjustedRealTime()},
          {"cpu_time", run.GetAdjustedCPUTime()},
          {"time_unit", benchmark::GetTimeUnitString(run.time_unit)},
      };
      for (const auto &[name, counter] : run.counters) {
        entry.emplace_back(name, static_cast<double>(counter.value));
      }
      _benchmarks.push_back(std::move(entry));
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

  [[nodiscard]] json::Array take_benchmarks() { return std::move(_benchmarks); }

private:
  json::Array _benchmarks;
};

} // namespace

int main(int argc, char **argv) {
  // `--json <path>` is this repo's shared machine-readable interface: all
  // bench binaries emit the same terapart.run_report/v1 schema. `--smoke`
  // shrinks per-benchmark measurement time so CI exercises every benchmark
  // (including the contended ones) in seconds.
  std::vector<char *> args;
  std::string json_path;
  bool smoke = false;
  for (int i = 0; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::string_view(argv[i]) == "--smoke") {
      smoke = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  static char min_time_flag[] = "--benchmark_min_time=0.01";
  if (smoke) {
    args.push_back(min_time_flag);
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  if (!json_path.empty()) {
    RunReport report("bench_micro_structures");
    report.add_section("benchmarks", reporter.take_benchmarks());
    report.capture_metrics(MetricsRegistry::global());
    report.capture_memory(MemoryTracker::global());
    if (!report.write(json_path)) {
      std::fprintf(stderr, "error: cannot open %s for writing\n", json_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
