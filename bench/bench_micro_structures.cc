/// Microbenchmarks (google-benchmark) for the core data structures: rating
/// maps (fixed hash vs sparse array), the dual counter vs two plain atomics,
/// and gain-table query/update throughput (dense vs sparse).
#include <benchmark/benchmark.h>

#include <atomic>

#include "coarsening/rating_map.h"
#include "common/random.h"
#include "generators/generators.h"
#include "parallel/dual_counter.h"
#include "partition/partitioned_graph.h"
#include "refinement/dense_gain_table.h"
#include "refinement/sparse_gain_table.h"

namespace {

using namespace terapart;

void BM_FixedHashMapAggregate(benchmark::State &state) {
  const auto distinct = static_cast<std::uint32_t>(state.range(0));
  Random rng(1);
  std::vector<std::uint32_t> keys(1024);
  for (auto &key : keys) {
    key = static_cast<std::uint32_t>(rng.next_bounded(distinct));
  }
  FixedHashMap<std::uint32_t, EdgeWeight> map(distinct);
  for (auto _ : state) {
    map.clear();
    for (const std::uint32_t key : keys) {
      benchmark::DoNotOptimize(map.add(key, 1));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_FixedHashMapAggregate)->Arg(8)->Arg(64)->Arg(1024);

void BM_SparseRatingMapAggregate(benchmark::State &state) {
  const auto distinct = static_cast<std::uint32_t>(state.range(0));
  Random rng(1);
  std::vector<std::uint32_t> keys(1024);
  for (auto &key : keys) {
    key = static_cast<std::uint32_t>(rng.next_bounded(distinct));
  }
  SparseRatingMap map(1 << 20, "bench"); // n-sized array, the classic layout
  for (auto _ : state) {
    map.clear();
    for (const std::uint32_t key : keys) {
      map.add(key, 1);
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_SparseRatingMapAggregate)->Arg(8)->Arg(64)->Arg(1024);

void BM_DualCounterFetchAdd(benchmark::State &state) {
  par::DualCounter counter;
  for (auto _ : state) {
    benchmark::DoNotOptimize(counter.fetch_add(7, 1));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DualCounterFetchAdd);

void BM_TwoPlainAtomicsReference(benchmark::State &state) {
  std::atomic<std::uint64_t> d{0};
  std::atomic<std::uint64_t> s{0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(d.fetch_add(7, std::memory_order_relaxed));
    benchmark::DoNotOptimize(s.fetch_add(1, std::memory_order_relaxed));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TwoPlainAtomicsReference);

struct GainBenchFixture {
  CsrGraph graph = gen::rhg(10'000, 16, 3.0, 1);
  BlockID k;
  PartitionedGraph partitioned;
  std::vector<NodeID> queries;

  explicit GainBenchFixture(const BlockID k_in) : k(k_in) {
    std::vector<BlockID> partition(graph.n());
    Random rng(2);
    for (auto &b : partition) {
      b = static_cast<BlockID>(rng.next_bounded(k));
    }
    partitioned = PartitionedGraph(graph, k, std::move(partition));
    queries.resize(4096);
    for (auto &u : queries) {
      u = static_cast<NodeID>(rng.next_bounded(graph.n()));
    }
  }
};

void BM_DenseGainTableQueries(benchmark::State &state) {
  GainBenchFixture fixture(static_cast<BlockID>(state.range(0)));
  DenseGainTable table(fixture.graph.n(), fixture.k);
  table.init(fixture.graph, fixture.partitioned);
  BlockID b = 0;
  for (auto _ : state) {
    EdgeWeight sum = 0;
    for (const NodeID u : fixture.queries) {
      sum += table.connection(fixture.graph, u, b);
      b = (b + 1) % fixture.k;
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 4096);
  state.counters["table_MiB"] =
      static_cast<double>(table.memory_bytes()) / (1024.0 * 1024.0);
}
BENCHMARK(BM_DenseGainTableQueries)->Arg(8)->Arg(64)->Arg(256);

void BM_SparseGainTableQueries(benchmark::State &state) {
  GainBenchFixture fixture(static_cast<BlockID>(state.range(0)));
  SparseGainTable table(fixture.graph, fixture.k);
  table.init(fixture.graph, fixture.partitioned);
  BlockID b = 0;
  for (auto _ : state) {
    EdgeWeight sum = 0;
    for (const NodeID u : fixture.queries) {
      sum += table.connection(fixture.graph, u, b);
      b = (b + 1) % fixture.k;
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 4096);
  state.counters["table_MiB"] =
      static_cast<double>(table.memory_bytes()) / (1024.0 * 1024.0);
}
BENCHMARK(BM_SparseGainTableQueries)->Arg(8)->Arg(64)->Arg(256);

void BM_SparseGainTableMoves(benchmark::State &state) {
  GainBenchFixture fixture(static_cast<BlockID>(state.range(0)));
  SparseGainTable table(fixture.graph, fixture.k);
  table.init(fixture.graph, fixture.partitioned);
  Random rng(5);
  for (auto _ : state) {
    const NodeID u = fixture.queries[rng.next_bounded(fixture.queries.size())];
    const BlockID from = fixture.partitioned.block(u);
    const auto to = static_cast<BlockID>(rng.next_bounded(fixture.k));
    if (from != to) {
      fixture.partitioned.force_move(u, fixture.graph.node_weight(u), to);
      table.notify_move(fixture.graph, u, from, to);
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SparseGainTableMoves)->Arg(8)->Arg(256);

} // namespace

BENCHMARK_MAIN();
