// Tests for the rating-map structures of Section IV-A: the classic sparse
// per-thread map and the shared atomic aggregator of the two-phase scheme
// (buffered flushing, first-setter uniqueness, concurrent correctness).
#include <gtest/gtest.h>

#include <bit>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "coarsening/rating_map.h"
#include "common/random.h"
#include "parallel/parallel_for.h"

namespace terapart {
namespace {

TEST(SparseRatingMap, AggregatesAndClears) {
  SparseRatingMap map(100, "test");
  map.add(5, 10);
  map.add(5, 3);
  map.add(42, 7);
  EXPECT_EQ(map.get(5), 13);
  EXPECT_EQ(map.get(42), 7);
  EXPECT_EQ(map.get(0), 0);
  EXPECT_EQ(map.touched().size(), 2u);

  std::map<ClusterID, EdgeWeight> seen;
  map.for_each([&](const ClusterID c, const EdgeWeight w) { seen[c] = w; });
  EXPECT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[5], 13);

  map.clear();
  EXPECT_EQ(map.get(5), 0);
  EXPECT_TRUE(map.touched().empty());
}

TEST(SparseRatingMap, TracksMemory) {
  MemoryTracker::global().reset();
  {
    SparseRatingMap map(1000, "test/ratings");
    EXPECT_EQ(MemoryTracker::global().current("test/ratings"), 1000 * sizeof(EdgeWeight));
  }
  EXPECT_EQ(MemoryTracker::global().current("test/ratings"), 0u);
}

TEST(SharedSparseAggregator, SingleThreadedMatchesReference) {
  par::set_num_threads(1);
  SharedSparseAggregator aggregator(500, 16, "test");
  std::map<ClusterID, EdgeWeight> reference;
  Random rng(3);
  for (int i = 0; i < 1000; ++i) {
    const auto cluster = static_cast<ClusterID>(rng.next_bounded(500));
    const auto weight = static_cast<EdgeWeight>(1 + rng.next_bounded(9));
    aggregator.add(cluster, weight);
    reference[cluster] += weight;
  }
  aggregator.flush_all();

  std::map<ClusterID, EdgeWeight> seen;
  std::set<ClusterID> visited;
  aggregator.for_each([&](const ClusterID c, const EdgeWeight w) {
    // First-setter lists must not contain duplicates.
    EXPECT_TRUE(visited.insert(c).second) << "duplicate cluster " << c;
    seen[c] = w;
  });
  EXPECT_EQ(seen, reference);

  aggregator.clear();
  bool any = false;
  aggregator.for_each([&](ClusterID, EdgeWeight) { any = true; });
  EXPECT_FALSE(any);
}

class AggregatorConcurrency : public ::testing::TestWithParam<int> {
protected:
  void SetUp() override { par::set_num_threads(GetParam()); }
  void TearDown() override { par::set_num_threads(1); }
};

INSTANTIATE_TEST_SUITE_P(Threads, AggregatorConcurrency, ::testing::Values(1, 2, 4, 8));

TEST_P(AggregatorConcurrency, ConcurrentAddsAggregateExactly) {
  // This is exactly the second-phase pattern: many threads funnel edge-weight
  // contributions for a single bumped vertex through tiny buffers into the
  // shared array. Totals must be exact and first-setters unique.
  constexpr ClusterID kClusters = 1000;
  constexpr std::uint32_t kContributions = 200'000;
  SharedSparseAggregator aggregator(kClusters, 8, "test"); // tiny buffers: many flushes

  std::vector<EdgeWeight> expected(kClusters, 0);
  for (std::uint32_t i = 0; i < kContributions; ++i) {
    expected[(i * 2654435761u) % kClusters] += 1 + static_cast<EdgeWeight>(i % 5);
  }

  par::parallel_for_each<std::uint32_t>(0, kContributions, [&](const std::uint32_t i) {
    aggregator.add((i * 2654435761u) % kClusters, 1 + static_cast<EdgeWeight>(i % 5));
  });
  aggregator.flush_all();

  std::set<ClusterID> visited;
  std::vector<EdgeWeight> actual(kClusters, 0);
  aggregator.for_each([&](const ClusterID c, const EdgeWeight w) {
    ASSERT_TRUE(visited.insert(c).second) << "duplicate first-setter entry for " << c;
    actual[c] = w;
  });
  for (ClusterID c = 0; c < kClusters; ++c) {
    ASSERT_EQ(actual[c], expected[c]) << "cluster " << c;
  }
}

TEST_P(AggregatorConcurrency, ReusableAcrossRounds) {
  // The second phase clears and reuses the aggregator per bumped vertex.
  SharedSparseAggregator aggregator(100, 4, "test");
  for (int round = 0; round < 10; ++round) {
    par::parallel_for_each<std::uint32_t>(0, 5000, [&](const std::uint32_t i) {
      aggregator.add(i % 100, 1);
    });
    aggregator.flush_all();
    EdgeWeight total = 0;
    NodeID entries = 0;
    aggregator.for_each([&](ClusterID, const EdgeWeight w) {
      total += w;
      ++entries;
    });
    ASSERT_EQ(total, 5000) << "round " << round;
    ASSERT_EQ(entries, 100u);
    aggregator.clear();
  }
}

TEST(ShardedSparseAggregator, GeometryIsCacheLineAligned) {
  par::set_num_threads(4);
  for (const std::size_t size :
       {std::size_t{1}, std::size_t{63}, std::size_t{1000}, std::size_t{1} << 20}) {
    ShardedSparseAggregator aggregator(size, 16, "test");
    // Power-of-two shard width, at least one cache line, covering the array.
    EXPECT_TRUE(std::has_single_bit(aggregator.shard_values())) << size;
    EXPECT_EQ(aggregator.shard_values() * sizeof(EdgeWeight) % kCacheLineBytes, 0u) << size;
    EXPECT_GE(aggregator.num_shards() * aggregator.shard_values(), size) << size;
    EXPECT_EQ(aggregator.shard_of(0), 0u);
    if (size > 1) {
      EXPECT_EQ(aggregator.shard_of(static_cast<ClusterID>(size - 1)),
                aggregator.num_shards() - 1)
          << size;
    }
  }
  par::set_num_threads(1);
}

TEST(ShardedSparseAggregator, TracksPaddedMemory) {
  MemoryTracker::global().reset();
  {
    // 1000 values pad up to whole shards; the lock table is one cache line
    // per shard. The tracked bytes must match the real footprint exactly.
    ShardedSparseAggregator aggregator(1000, 16, "test/sharded");
    const std::uint64_t expected =
        static_cast<std::uint64_t>(aggregator.num_shards()) * aggregator.shard_values() *
            sizeof(EdgeWeight) +
        static_cast<std::uint64_t>(aggregator.num_shards()) * kCacheLineBytes;
    EXPECT_EQ(aggregator.memory_bytes(), expected);
    EXPECT_EQ(MemoryTracker::global().current("test/sharded"), expected);
    EXPECT_GE(aggregator.memory_bytes(), 1000 * sizeof(EdgeWeight));
  }
  EXPECT_EQ(MemoryTracker::global().current("test/sharded"), 0u);
}

TEST(ShardedSparseAggregator, SingleThreadedMatchesReference) {
  par::set_num_threads(1);
  ShardedSparseAggregator aggregator(500, 16, "test");
  std::map<ClusterID, EdgeWeight> reference;
  Random rng(3);
  for (int i = 0; i < 1000; ++i) {
    const auto cluster = static_cast<ClusterID>(rng.next_bounded(500));
    const auto weight = static_cast<EdgeWeight>(1 + rng.next_bounded(9));
    aggregator.add(cluster, weight);
    reference[cluster] += weight;
  }
  aggregator.flush_all();

  std::map<ClusterID, EdgeWeight> seen;
  std::set<ClusterID> visited;
  aggregator.for_each([&](const ClusterID c, const EdgeWeight w) {
    EXPECT_TRUE(visited.insert(c).second) << "duplicate cluster " << c;
    seen[c] = w;
  });
  EXPECT_EQ(seen, reference);

  aggregator.clear();
  bool any = false;
  aggregator.for_each([&](ClusterID, EdgeWeight) { any = true; });
  EXPECT_FALSE(any);
}

TEST(ShardedSparseAggregator, SingleThreadedIterationOrderMatchesFlatBaseline) {
  // The determinism contract: on one thread, the sharded aggregator must
  // produce the exact iteration sequence of the flat-atomic baseline —
  // select_and_move consumes tie-break randomness in iteration order, so any
  // reordering would change single-threaded partition results.
  par::set_num_threads(1);
  SharedSparseAggregator flat(500, 8, "test");
  ShardedSparseAggregator sharded(500, 8, "test");
  Random rng(11);
  for (int i = 0; i < 2000; ++i) {
    const auto cluster = static_cast<ClusterID>(rng.next_bounded(500));
    const auto weight = static_cast<EdgeWeight>(1 + rng.next_bounded(4));
    flat.add(cluster, weight);
    sharded.add(cluster, weight);
  }
  flat.flush_all();
  sharded.flush_all();

  std::vector<std::pair<ClusterID, EdgeWeight>> flat_seq;
  std::vector<std::pair<ClusterID, EdgeWeight>> sharded_seq;
  flat.for_each([&](const ClusterID c, const EdgeWeight w) { flat_seq.emplace_back(c, w); });
  sharded.for_each(
      [&](const ClusterID c, const EdgeWeight w) { sharded_seq.emplace_back(c, w); });
  EXPECT_EQ(flat_seq, sharded_seq);
}

TEST(ShardedSparseAggregator, ClearDiscardsUnflushedBuffers) {
  par::set_num_threads(1);
  ShardedSparseAggregator aggregator(100, 16, "test");
  aggregator.add(7, 5); // buffered, never flushed
  aggregator.clear();
  aggregator.add(7, 2);
  aggregator.flush_all();
  EdgeWeight value = 0;
  aggregator.for_each([&](const ClusterID c, const EdgeWeight w) {
    EXPECT_EQ(c, 7u);
    value = w;
  });
  EXPECT_EQ(value, 2); // the pre-clear buffered 5 must not leak through
}

class ShardedAggregatorConcurrency : public ::testing::TestWithParam<int> {
protected:
  void SetUp() override { par::set_num_threads(GetParam()); }
  void TearDown() override { par::set_num_threads(1); }
};

INSTANTIATE_TEST_SUITE_P(Threads, ShardedAggregatorConcurrency, ::testing::Values(1, 2, 4, 8));

TEST_P(ShardedAggregatorConcurrency, ConcurrentAddsAggregateExactly) {
  constexpr ClusterID kClusters = 1000;
  constexpr std::uint32_t kContributions = 200'000;
  ShardedSparseAggregator aggregator(kClusters, 8, "test"); // tiny buffers: many flushes

  std::vector<EdgeWeight> expected(kClusters, 0);
  for (std::uint32_t i = 0; i < kContributions; ++i) {
    expected[(i * 2654435761u) % kClusters] += 1 + static_cast<EdgeWeight>(i % 5);
  }

  par::parallel_for_each<std::uint32_t>(0, kContributions, [&](const std::uint32_t i) {
    aggregator.add((i * 2654435761u) % kClusters, 1 + static_cast<EdgeWeight>(i % 5));
  });
  aggregator.flush_all();

  std::set<ClusterID> visited;
  std::vector<EdgeWeight> actual(kClusters, 0);
  aggregator.for_each([&](const ClusterID c, const EdgeWeight w) {
    ASSERT_TRUE(visited.insert(c).second) << "duplicate first-setter entry for " << c;
    actual[c] = w;
  });
  for (ClusterID c = 0; c < kClusters; ++c) {
    ASSERT_EQ(actual[c], expected[c]) << "cluster " << c;
  }
}

TEST_P(ShardedAggregatorConcurrency, ReusableAcrossRounds) {
  ShardedSparseAggregator aggregator(100, 4, "test");
  for (int round = 0; round < 10; ++round) {
    par::parallel_for_each<std::uint32_t>(0, 5000, [&](const std::uint32_t i) {
      aggregator.add(i % 100, 1);
    });
    aggregator.flush_all();
    EdgeWeight total = 0;
    NodeID entries = 0;
    aggregator.for_each([&](ClusterID, const EdgeWeight w) {
      total += w;
      ++entries;
    });
    ASSERT_EQ(total, 5000) << "round " << round;
    ASSERT_EQ(entries, 100u);
    aggregator.clear();
  }
}

TEST(SharedSparseAggregator, BufferingReducesToSameTotals) {
  // Same stream through different buffer capacities => same aggregate.
  par::set_num_threads(4);
  for (const std::size_t capacity : {2u, 16u, 256u}) {
    SharedSparseAggregator aggregator(50, capacity, "test");
    par::parallel_for_each<std::uint32_t>(0, 10'000, [&](const std::uint32_t i) {
      aggregator.add(i % 50, 2);
    });
    aggregator.flush_all();
    EdgeWeight total = 0;
    aggregator.for_each([&](ClusterID, const EdgeWeight w) { total += w; });
    EXPECT_EQ(total, 20'000) << "capacity " << capacity;
  }
  par::set_num_threads(1);
}

} // namespace
} // namespace terapart
