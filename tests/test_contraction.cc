// Tests for cluster contraction (Section IV-B): correctness of the coarse
// graph and equivalence of the one-pass algorithm with the buffered baseline.
#include <gtest/gtest.h>

#include <map>
#include <numeric>

#include "coarsening/contraction.h"
#include "coarsening/lp_clustering.h"
#include "compression/encoder.h"
#include "generators/generators.h"
#include "graph/graph_builder.h"
#include "graph/validation.h"
#include "parallel/thread_pool.h"

namespace terapart {
namespace {

/// Reference contraction: O(n + m) maps, trivially correct.
struct ReferenceCoarse {
  std::map<std::pair<NodeID, NodeID>, EdgeWeight> edges; // coarse (a<b) -> weight
  std::map<NodeID, NodeWeight> node_weights;             // coarse id -> weight
};

ReferenceCoarse reference_contract(const CsrGraph &graph, std::span<const ClusterID> clustering,
                                   std::span<const NodeID> mapping) {
  ReferenceCoarse result;
  (void)clustering;
  for (NodeID u = 0; u < graph.n(); ++u) {
    result.node_weights[mapping[u]] += graph.node_weight(u);
    graph.for_each_neighbor(u, [&](const NodeID v, const EdgeWeight w) {
      const NodeID cu = mapping[u];
      const NodeID cv = mapping[v];
      if (cu < cv) {
        result.edges[{cu, cv}] += w;
      }
    });
  }
  return result;
}

/// Checks `result` against the reference built from its own mapping.
void expect_correct_contraction(const CsrGraph &graph, std::span<const ClusterID> clustering,
                                const ContractionResult &result) {
  ASSERT_EQ(result.mapping.size(), graph.n());
  const CsrGraph &coarse = result.graph;
  expect_valid_graph(coarse);

  // Mapping consistency: same cluster -> same coarse vertex, and vice versa.
  std::map<ClusterID, NodeID> cluster_to_coarse;
  for (NodeID u = 0; u < graph.n(); ++u) {
    ASSERT_LT(result.mapping[u], coarse.n());
    const auto [it, inserted] =
        cluster_to_coarse.emplace(clustering[u], result.mapping[u]);
    ASSERT_EQ(it->second, result.mapping[u]) << "cluster split across coarse vertices";
    (void)inserted;
  }
  ASSERT_EQ(cluster_to_coarse.size(), coarse.n());

  const ReferenceCoarse reference = reference_contract(graph, clustering, result.mapping);

  // Node weights.
  NodeWeight total_coarse_weight = 0;
  for (NodeID c = 0; c < coarse.n(); ++c) {
    ASSERT_EQ(coarse.node_weight(c), reference.node_weights.at(c)) << "coarse vertex " << c;
    total_coarse_weight += coarse.node_weight(c);
  }
  EXPECT_EQ(total_coarse_weight, graph.total_node_weight());

  // Edge multiset with weights.
  std::map<std::pair<NodeID, NodeID>, EdgeWeight> actual;
  for (NodeID c = 0; c < coarse.n(); ++c) {
    coarse.for_each_neighbor(c, [&](const NodeID d, const EdgeWeight w) {
      ASSERT_NE(c, d) << "coarse self-loop";
      if (c < d) {
        actual[{c, d}] += w;
      }
    });
  }
  ASSERT_EQ(actual.size(), reference.edges.size());
  for (const auto &[key, weight] : reference.edges) {
    ASSERT_EQ(actual.at(key), weight) << key.first << "-" << key.second;
  }
}

struct ContractionCase {
  std::string name;
  bool one_pass;
  int threads;
  NodeID bump_threshold;
  EdgeID batch_edges;
};

class ContractionTest : public ::testing::TestWithParam<ContractionCase> {
protected:
  void SetUp() override { par::set_num_threads(GetParam().threads); }
  void TearDown() override { par::set_num_threads(1); }

  [[nodiscard]] ContractionConfig config() const {
    ContractionConfig cfg;
    cfg.one_pass = GetParam().one_pass;
    cfg.bump_threshold = GetParam().bump_threshold;
    cfg.batch_edges = GetParam().batch_edges;
    return cfg;
  }
};

INSTANTIATE_TEST_SUITE_P(
    Modes, ContractionTest,
    ::testing::Values(ContractionCase{"buffered_p1", false, 1, 10000, 4096},
                      ContractionCase{"buffered_p4", false, 4, 10000, 4096},
                      ContractionCase{"one_pass_p1", true, 1, 10000, 4096},
                      ContractionCase{"one_pass_p4", true, 4, 10000, 4096},
                      // Tiny bump threshold: every nontrivial coarse vertex
                      // goes through the second phase.
                      ContractionCase{"one_pass_bumpy", true, 4, 6, 4096},
                      // Tiny batches: many dual-counter transactions.
                      ContractionCase{"one_pass_tiny_batches", true, 4, 10000, 8}),
    [](const auto &info) { return info.param.name; });

TEST_P(ContractionTest, CorrectOnLpClusterings) {
  for (const auto &spec : {"rgg2d:n=1200,deg=10", "rhg:n=1200,deg=12,gamma=2.8",
                           "weblike:n=1000,deg=16", "grid2d:rows=30,cols=30"}) {
    const CsrGraph graph = gen::by_spec(spec, 8);
    LpClusteringConfig lp;
    const auto clustering =
        lp_cluster(graph, lp, std::max<NodeWeight>(1, graph.total_node_weight() / 32), 21);
    const ContractionResult result = contract_clustering(graph, clustering, config());
    expect_correct_contraction(graph, clustering, result);
    EXPECT_LT(result.graph.n(), graph.n());
  }
}

TEST_P(ContractionTest, IdentityClusteringReproducesTheGraph) {
  const CsrGraph graph = gen::with_random_edge_weights(gen::gnm(300, 1200, 5), 9, 6);
  std::vector<ClusterID> identity(graph.n());
  std::iota(identity.begin(), identity.end(), ClusterID{0});
  const ContractionResult result = contract_clustering(graph, identity, config());
  ASSERT_EQ(result.graph.n(), graph.n());
  ASSERT_EQ(result.graph.m(), graph.m());
  EXPECT_EQ(result.graph.total_edge_weight(), graph.total_edge_weight());
  expect_correct_contraction(graph, identity, result);
}

TEST_P(ContractionTest, SingleClusterCollapsesToOneVertex) {
  const CsrGraph graph = gen::grid2d(12, 12);
  const std::vector<ClusterID> all_zero(graph.n(), 0);
  const ContractionResult result = contract_clustering(graph, all_zero, config());
  EXPECT_EQ(result.graph.n(), 1u);
  EXPECT_EQ(result.graph.m(), 0u);
  EXPECT_EQ(result.graph.node_weight(0), graph.total_node_weight());
}

TEST_P(ContractionTest, PairClusteringHalvesTheGraph) {
  // Pair up 2i and 2i+1 on a path: classic matching contraction.
  const NodeID n = 64;
  std::vector<std::vector<NodeID>> adjacency(n);
  for (NodeID u = 0; u + 1 < n; ++u) {
    adjacency[u].push_back(u + 1);
    adjacency[u + 1].push_back(u);
  }
  const CsrGraph graph = graph_from_adjacency_unweighted(adjacency);
  std::vector<ClusterID> clustering(n);
  for (NodeID u = 0; u < n; ++u) {
    clustering[u] = u - (u % 2);
  }
  const ContractionResult result = contract_clustering(graph, clustering, config());
  EXPECT_EQ(result.graph.n(), n / 2);
  EXPECT_EQ(result.graph.m(), n - 2); // path of n/2 vertices
  expect_correct_contraction(graph, clustering, result);
}

TEST_P(ContractionTest, WeightConservation) {
  const CsrGraph graph = gen::with_random_edge_weights(gen::rhg(800, 12, 3.0, 4), 20, 2);
  LpClusteringConfig lp;
  const auto clustering = lp_cluster(graph, lp, graph.total_node_weight() / 16, 3);
  const ContractionResult result = contract_clustering(graph, clustering, config());

  // Total coarse edge weight = total fine weight minus intra-cluster weight.
  EdgeWeight intra = 0;
  for (NodeID u = 0; u < graph.n(); ++u) {
    graph.for_each_neighbor(u, [&](const NodeID v, const EdgeWeight w) {
      if (clustering[u] == clustering[v]) {
        intra += w;
      }
    });
  }
  EXPECT_EQ(result.graph.total_edge_weight(), graph.total_edge_weight() - intra);
}

TEST_P(ContractionTest, WorksOnCompressedInput) {
  const CsrGraph graph = gen::weblike(900, 14, 10);
  const CompressedGraph compressed = compress_graph(graph);
  LpClusteringConfig lp;
  const auto clustering = lp_cluster(compressed, lp, graph.total_node_weight() / 32, 11);
  const ContractionResult result = contract_clustering(compressed, clustering, config());
  expect_correct_contraction(graph, clustering, result);
}

TEST(Contraction, OnePassAndBufferedAgreeUpToRenumbering) {
  par::set_num_threads(4);
  const CsrGraph graph = gen::rgg2d(1000, 12, 5);
  LpClusteringConfig lp;
  const auto clustering = lp_cluster(graph, lp, graph.total_node_weight() / 32, 2);

  ContractionConfig buffered;
  buffered.one_pass = false;
  ContractionConfig one_pass;
  one_pass.one_pass = true;
  const ContractionResult a = contract_clustering(graph, clustering, buffered);
  const ContractionResult b = contract_clustering(graph, clustering, one_pass);

  ASSERT_EQ(a.graph.n(), b.graph.n());
  ASSERT_EQ(a.graph.m(), b.graph.m());
  EXPECT_EQ(a.graph.total_edge_weight(), b.graph.total_edge_weight());
  EXPECT_EQ(a.graph.total_node_weight(), b.graph.total_node_weight());

  // Same coarse graph up to the coarse-vertex numbering: compare through the
  // mappings per fine edge.
  for (NodeID u = 0; u < graph.n(); ++u) {
    ASSERT_EQ(a.graph.node_weight(a.mapping[u]), b.graph.node_weight(b.mapping[u]));
  }
  par::set_num_threads(1);
}

} // namespace
} // namespace terapart
