// Cross-cutting edge-case tests: gain-table value-width boundaries,
// truncated/corrupt input files, hierarchy statistics, and a validity sweep
// over the entire Benchmark Set A suite.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "terapart.h"
#include "partition/facade.h"

namespace terapart {
namespace {

namespace fs = std::filesystem;

// ------------------------------------------------------- width boundaries ---

/// The sparse gain table picks 8/16/32/64-bit value slots from the vertex's
/// incident weight; exercise weights straddling every boundary.
TEST(SparseGainTableWidths, AllWidthCodesStoreExactValues) {
  const EdgeWeight boundary_weights[] = {
      1,          254,          255,         256,            // 8 <-> 16 bit
      65'534,     65'535,       65'536,                      // 16 <-> 32 bit
      (1LL << 32) - 2, (1LL << 32) - 1, (1LL << 32), (1LL << 40)}; // 32 <-> 64 bit

  for (const EdgeWeight weight : boundary_weights) {
    // Path u - v with one heavy edge; u's incident weight == `weight`.
    GraphBuilder builder(3);
    builder.add_edge(0, 1, weight);
    builder.add_edge(1, 2, 1);
    const CsrGraph graph = builder.build(false, true);

    const BlockID k = 8;
    PartitionedGraph partitioned(graph, k, std::vector<BlockID>{0, 3, 5});
    SparseGainTable table(graph, k);
    table.init(graph, partitioned);

    EXPECT_EQ(table.affinity(0, 3), weight) << "weight " << weight;
    EXPECT_EQ(table.affinity(1, 0), weight) << "weight " << weight;
    EXPECT_EQ(table.affinity(1, 5), 1) << "weight " << weight;

    // A move must update the heavy affinity exactly (no truncation).
    partitioned.force_move(1, graph.node_weight(1), 7);
    table.notify_move(graph, 1, 3, 7);
    EXPECT_EQ(table.affinity(0, 3), 0) << "weight " << weight;
    EXPECT_EQ(table.affinity(0, 7), weight) << "weight " << weight;
  }
}

TEST(SparseGainTableWidths, MixedWidthVerticesCoexist) {
  // Star whose spokes have wildly different weights: each leaf gets its own
  // width class, the hub gets the widest.
  GraphBuilder builder(5);
  builder.add_edge(0, 1, 3);            // 8-bit leaf
  builder.add_edge(0, 2, 1'000);        // 16-bit leaf
  builder.add_edge(0, 3, 1'000'000);    // 32-bit leaf
  builder.add_edge(0, 4, 1LL << 40);    // 64-bit leaf
  const CsrGraph graph = builder.build(false, true);
  PartitionedGraph partitioned(graph, 4, std::vector<BlockID>{0, 1, 2, 3, 1});
  SparseGainTable table(graph, 4);
  table.init(graph, partitioned);
  EXPECT_EQ(table.affinity(0, 1), 3 + (1LL << 40));
  EXPECT_EQ(table.affinity(0, 2), 1'000);
  EXPECT_EQ(table.affinity(0, 3), 1'000'000);
  EXPECT_EQ(table.affinity(1, 0), 3);
  EXPECT_EQ(table.affinity(4, 0), 1LL << 40);
}

// ----------------------------------------------------------- broken files ---

class TempFile {
public:
  TempFile() {
    static int counter = 0;
    _path = fs::temp_directory_path() / ("terapart_edge_" + std::to_string(::getpid()) + "_" +
                                         std::to_string(counter++));
  }
  ~TempFile() { fs::remove(_path); }
  [[nodiscard]] const fs::path &path() const { return _path; }

private:
  fs::path _path;
};

TEST(BrokenFiles, TruncatedTpgThrows) {
  TempFile file;
  const CsrGraph graph = gen::grid2d(10, 10);
  io::write_tpg(file.path(), graph);
  // Truncate in the middle of the edge array.
  fs::resize_file(file.path(), fs::file_size(file.path()) / 2);
  EXPECT_THROW((void)io::read_tpg(file.path()), std::runtime_error);
}

TEST(BrokenFiles, TruncatedTpgStreamThrows) {
  TempFile file;
  const CsrGraph graph = gen::grid2d(20, 20);
  io::write_tpg(file.path(), graph);
  fs::resize_file(file.path(), fs::file_size(file.path()) * 2 / 3);
  // The header is validated against the file size at open, so truncation is
  // detected before the first packet is ever streamed.
  EXPECT_THROW(io::TpgStreamReader(file.path(), 64), std::runtime_error);
  auto opened = io::TpgStreamReader::open(file.path(), 64);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.error().code, ErrorCode::kCorruptHeader);
}

TEST(BrokenFiles, MissingFileThrows) {
  EXPECT_THROW((void)io::read_tpg("/nonexistent/path/graph.tpg"), std::runtime_error);
  EXPECT_THROW((void)io::read_metis("/nonexistent/path/graph.metis"), std::runtime_error);
  EXPECT_THROW(io::TpgStreamReader("/nonexistent/path/graph.tpg"), std::runtime_error);
}

TEST(BrokenFiles, MetisWithTooFewLinesThrows) {
  TempFile file;
  {
    std::ofstream out(file.path());
    out << "5 4\n1 2\n"; // promises 5 vertices, delivers 1 line
  }
  EXPECT_THROW((void)io::read_metis(file.path()), std::runtime_error);
}

// ------------------------------------------------------------ level stats ---

TEST(LevelStats, ReportedForEveryLevel) {
  const CsrGraph graph = gen::rgg2d(6000, 12, 3);
  const PartitionResult result = Partitioner(terapart_context(4, 1)).partition(graph);
  ASSERT_EQ(result.levels.size(), static_cast<std::size_t>(result.num_levels) + 1);
  EXPECT_EQ(result.levels.front().n, graph.n());
  EXPECT_EQ(result.levels.front().m, graph.m());
  for (std::size_t level = 1; level < result.levels.size(); ++level) {
    EXPECT_LT(result.levels[level].n, result.levels[level - 1].n);
    EXPECT_GT(result.levels[level].memory_bytes, 0u);
  }
}

// ---------------------------------------------------------- full-suite sweep ---

class SuiteSweep : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(SetA, SuiteSweep, ::testing::Range(0, 13));

TEST_P(SuiteSweep, TerapartIsValidOnEverySetAGraph) {
  const auto suite = gen::benchmark_set_a(gen::SuiteScale::kTiny);
  const auto index = static_cast<std::size_t>(GetParam());
  if (index >= suite.size()) {
    GTEST_SKIP() << "suite has " << suite.size() << " graphs";
  }
  const CsrGraph graph = suite[index].build(7);
  const Context ctx = terapart_context(8, 3);
  const PartitionResult result = Partitioner(ctx).partition(graph);
  EXPECT_TRUE(result.balanced) << suite[index].name << " imbalance " << result.imbalance;
  EXPECT_EQ(result.cut, metrics::edge_cut(graph, result.partition)) << suite[index].name;
}

TEST_P(SuiteSweep, CompressionRoundTripsOnEverySetAGraph) {
  const auto suite = gen::benchmark_set_a(gen::SuiteScale::kTiny);
  const auto index = static_cast<std::size_t>(GetParam());
  if (index >= suite.size()) {
    GTEST_SKIP();
  }
  const CsrGraph graph = suite[index].build(7);
  const CompressedGraph compressed = compress_graph(graph);
  ASSERT_EQ(compressed.m(), graph.m()) << suite[index].name;
  ASSERT_EQ(compressed.total_edge_weight(), graph.total_edge_weight());
  for (NodeID u = 0; u < graph.n(); u += 17) { // sampled, suites are broad
    std::vector<std::pair<NodeID, EdgeWeight>> expected;
    graph.for_each_neighbor(
        u, [&](const NodeID v, const EdgeWeight w) { expected.emplace_back(v, w); });
    ASSERT_EQ(compressed.decode_sorted(u), expected) << suite[index].name << " vertex " << u;
  }
}

} // namespace
} // namespace terapart
