// Tests for the multilevel coarsening driver.
#include <gtest/gtest.h>

#include "coarsening/coarsener.h"
#include "compression/encoder.h"
#include "generators/generators.h"
#include "graph/validation.h"
#include "parallel/thread_pool.h"

namespace terapart {
namespace {

TEST(Coarsener, BuildsAShrinkingHierarchy) {
  const CsrGraph graph = gen::rgg2d(8000, 12, 3);
  CoarseningConfig config;
  config.contraction_limit_factor = 32;
  const GraphHierarchy hierarchy = coarsen(graph, config, /*k=*/4, 7);
  ASSERT_FALSE(hierarchy.empty());
  NodeID previous = graph.n();
  for (std::size_t level = 0; level < hierarchy.num_levels(); ++level) {
    const CsrGraph &coarse = hierarchy.graphs[level];
    expect_valid_graph(coarse);
    EXPECT_LT(coarse.n(), previous);
    EXPECT_EQ(coarse.total_node_weight(), graph.total_node_weight());
    previous = coarse.n();
  }
  // The coarsest level reached the target (or converged close to it).
  EXPECT_LT(hierarchy.coarsest().n(), graph.n() / 4);
}

TEST(Coarsener, MappingsComposeToTheFinestGraph) {
  const CsrGraph graph = gen::rhg(4000, 12, 3.0, 9);
  CoarseningConfig config;
  config.contraction_limit_factor = 16;
  const GraphHierarchy hierarchy = coarsen(graph, config, 2, 5);
  ASSERT_FALSE(hierarchy.empty());

  ASSERT_EQ(hierarchy.mappings.size(), hierarchy.num_levels());
  ASSERT_EQ(hierarchy.mappings[0].size(), graph.n());
  for (std::size_t level = 1; level < hierarchy.num_levels(); ++level) {
    ASSERT_EQ(hierarchy.mappings[level].size(), hierarchy.graphs[level - 1].n());
  }
  // Composition lands in range of the coarsest graph.
  for (NodeID u = 0; u < graph.n(); u += 97) {
    NodeID image = hierarchy.mappings[0][u];
    for (std::size_t level = 1; level < hierarchy.num_levels(); ++level) {
      image = hierarchy.mappings[level][image];
    }
    ASSERT_LT(image, hierarchy.coarsest().n());
  }
}

TEST(Coarsener, NoHierarchyForSmallGraphs) {
  const CsrGraph graph = gen::grid2d(8, 8);
  CoarseningConfig config;
  config.contraction_limit_factor = 128;
  const GraphHierarchy hierarchy = coarsen(graph, config, 8, 1);
  EXPECT_TRUE(hierarchy.empty());
}

TEST(Coarsener, RespectsMaxLevels) {
  const CsrGraph graph = gen::rgg2d(8000, 12, 3);
  CoarseningConfig config;
  config.contraction_limit_factor = 2;
  config.max_levels = 2;
  const GraphHierarchy hierarchy = coarsen(graph, config, 2, 3);
  EXPECT_LE(hierarchy.num_levels(), 2u);
}

TEST(Coarsener, WorksOnCompressedInput) {
  par::set_num_threads(4);
  const CsrGraph graph = gen::weblike(6000, 16, 11);
  const CompressedGraph compressed = compress_graph(graph);
  CoarseningConfig config;
  config.contraction_limit_factor = 32;
  const GraphHierarchy hierarchy = coarsen(compressed, config, 4, 13);
  ASSERT_FALSE(hierarchy.empty());
  EXPECT_EQ(hierarchy.graphs[0].total_node_weight(), graph.total_node_weight());
  expect_valid_graph(hierarchy.coarsest());
  par::set_num_threads(1);
}

} // namespace
} // namespace terapart
