// Tests for the parallel substrate: thread pool, loops, prefix sums,
// per-thread storage, atomic helpers, and the 128-bit dual counter.
#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <numeric>
#include <set>

#include "common/random.h"
#include "parallel/atomic_utils.h"
#include "parallel/dual_counter.h"
#include "parallel/numa_alloc.h"
#include "parallel/parallel_for.h"
#include "parallel/prefix_sum.h"
#include "parallel/thread_local_storage.h"
#include "parallel/thread_pool.h"

namespace terapart::par {
namespace {

class ParallelTest : public ::testing::TestWithParam<int> {
protected:
  void SetUp() override { set_num_threads(GetParam()); }
  void TearDown() override { set_num_threads(1); }
};

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ParallelTest, ::testing::Values(1, 2, 4, 8));

TEST_P(ParallelTest, RunOnAllRunsEveryThreadOnce) {
  const int p = num_threads();
  std::vector<std::atomic<int>> counters(static_cast<std::size_t>(p));
  ThreadPool::global().run_on_all([&](const int t) {
    counters[static_cast<std::size_t>(t)].fetch_add(1);
  });
  for (int t = 0; t < p; ++t) {
    EXPECT_EQ(counters[static_cast<std::size_t>(t)].load(), 1) << "thread " << t;
  }
}

TEST_P(ParallelTest, NestedParallelismDegradesToSequential) {
  std::atomic<int> calls{0};
  ThreadPool::global().run_on_all([&](int) {
    ThreadPool::global().run_on_all([&](int) { calls.fetch_add(1); });
  });
  EXPECT_EQ(calls.load(), num_threads());
}

TEST_P(ParallelTest, ParallelForEachCoversRangeExactlyOnce) {
  constexpr std::uint32_t kN = 100'000;
  std::vector<std::atomic<std::uint8_t>> seen(kN);
  parallel_for_each<std::uint32_t>(0, kN, [&](const std::uint32_t i) {
    seen[i].fetch_add(1);
  });
  for (std::uint32_t i = 0; i < kN; ++i) {
    ASSERT_EQ(seen[i].load(), 1) << i;
  }
}

TEST_P(ParallelTest, ParallelForEmptyRange) {
  bool called = false;
  parallel_for<std::uint32_t>(5, 5, [&](std::uint32_t, std::uint32_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST_P(ParallelTest, ParallelSum) {
  constexpr std::uint64_t kN = 200'000;
  const auto total = parallel_sum<std::uint64_t>(
      0, kN, [](const std::uint64_t i) { return static_cast<std::int64_t>(i); });
  EXPECT_EQ(static_cast<std::uint64_t>(total), kN * (kN - 1) / 2);
}

TEST_P(ParallelTest, ParallelMax) {
  constexpr std::uint32_t kN = 50'000;
  const auto max = parallel_max<std::uint32_t>(0, kN, std::int64_t{-1}, [](const std::uint32_t i) {
    return static_cast<std::int64_t>((i * 2654435761u) % 99991);
  });
  std::int64_t expected = -1;
  for (std::uint32_t i = 0; i < kN; ++i) {
    expected = std::max<std::int64_t>(expected, (i * 2654435761u) % 99991);
  }
  EXPECT_EQ(max, expected);
}

TEST_P(ParallelTest, StaticSchedulingPartitions) {
  constexpr std::uint32_t kN = 12'345;
  std::vector<std::atomic<std::uint8_t>> seen(kN);
  parallel_for_static<std::uint32_t>(0, kN, [&](int, const std::uint32_t begin,
                                                const std::uint32_t end) {
    for (std::uint32_t i = begin; i < end; ++i) {
      seen[i].fetch_add(1);
    }
  });
  for (std::uint32_t i = 0; i < kN; ++i) {
    ASSERT_EQ(seen[i].load(), 1);
  }
}

TEST_P(ParallelTest, PrefixSumMatchesSequential) {
  for (const std::size_t n : {0u, 1u, 100u, 4096u, 100'001u}) {
    std::vector<std::uint32_t> in(n);
    Random rng(n);
    for (auto &value : in) {
      value = static_cast<std::uint32_t>(rng.next_bounded(1000));
    }
    std::vector<std::uint64_t> out(n);
    const std::uint64_t total =
        prefix_sum_exclusive<std::uint32_t, std::uint64_t>(in, out);

    std::uint64_t running = 0;
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(out[i], running) << "index " << i << " n " << n;
      running += in[i];
    }
    EXPECT_EQ(total, running);
  }
}

TEST_P(ParallelTest, PrefixSumInPlace) {
  std::vector<std::uint64_t> data(10'000, 1);
  const std::uint64_t total = prefix_sum_exclusive<std::uint64_t, std::uint64_t>(data, data);
  EXPECT_EQ(total, 10'000u);
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_EQ(data[i], i);
  }
}

TEST_P(ParallelTest, ThreadLocalGivesEachThreadItsOwnInstance) {
  ThreadLocal<std::vector<int>> storage;
  EXPECT_EQ(storage.size(), static_cast<std::size_t>(num_threads()));
  ThreadPool::global().run_on_all([&](const int t) {
    storage.local().push_back(t);
  });
  std::set<int> owners;
  storage.for_each([&](const std::vector<int> &values) {
    for (const int t : values) {
      EXPECT_TRUE(owners.insert(t).second) << "thread wrote to two slots";
    }
  });
  EXPECT_EQ(owners.size(), static_cast<std::size_t>(num_threads()));
}

TEST_P(ParallelTest, AtomicAddIfLeqNeverOvershoots) {
  std::atomic<std::int64_t> value{0};
  constexpr std::int64_t kBound = 1000;
  std::atomic<int> successes{0};
  parallel_for_each<std::uint32_t>(0, 10'000, [&](std::uint32_t) {
    if (atomic_add_if_leq(value, std::int64_t{1}, kBound)) {
      successes.fetch_add(1);
    }
  });
  EXPECT_EQ(value.load(), kBound);
  EXPECT_EQ(successes.load(), kBound);
}

TEST_P(ParallelTest, AtomicMax) {
  std::atomic<std::int64_t> value{-100};
  parallel_for_each<std::uint32_t>(0, 10'000, [&](const std::uint32_t i) {
    atomic_max(value, static_cast<std::int64_t>((i * 7919) % 5000));
  });
  EXPECT_EQ(value.load(), 4999);
}

// Dual counter: the core one-pass contraction invariant — concurrent
// reservations are pairwise disjoint and exactly tile [0, total).
TEST_P(ParallelTest, DualCounterReservationsTile) {
  DualCounter counter;
  constexpr std::uint32_t kOps = 20'000;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> edge_ranges(kOps);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> vertex_ranges(kOps);
  parallel_for_each<std::uint32_t>(0, kOps, [&](const std::uint32_t i) {
    const std::uint64_t edges = 1 + i % 7;
    const std::uint64_t vertices = 1 + i % 3;
    const auto reservation = counter.fetch_add(edges, vertices);
    edge_ranges[i] = {reservation.edge_begin, reservation.edge_begin + edges};
    vertex_ranges[i] = {reservation.vertex_begin, reservation.vertex_begin + vertices};
  });

  const auto check_tiling = [](std::vector<std::pair<std::uint64_t, std::uint64_t>> ranges,
                               const std::uint64_t expected_total) {
    std::sort(ranges.begin(), ranges.end());
    std::uint64_t position = 0;
    for (const auto &[begin, end] : ranges) {
      ASSERT_EQ(begin, position);
      position = end;
    }
    EXPECT_EQ(position, expected_total);
  };
  const auto totals = counter.load();
  check_tiling(edge_ranges, totals.edge_begin);
  check_tiling(vertex_ranges, totals.vertex_begin);
}

TEST(DualCounter, PacksAndUnpacks) {
  DualCounter counter;
  const auto r0 = counter.fetch_add(10, 3);
  EXPECT_EQ(r0.edge_begin, 0u);
  EXPECT_EQ(r0.vertex_begin, 0u);
  const auto r1 = counter.fetch_add(5, 1);
  EXPECT_EQ(r1.edge_begin, 10u);
  EXPECT_EQ(r1.vertex_begin, 3u);
  const auto totals = counter.load();
  EXPECT_EQ(totals.edge_begin, 15u);
  EXPECT_EQ(totals.vertex_begin, 4u);
  counter.reset();
  EXPECT_EQ(counter.load().edge_begin, 0u);
}

TEST(ThreadPool, ResizeChangesThreadCount) {
  set_num_threads(3);
  EXPECT_EQ(num_threads(), 3);
  set_num_threads(1);
  EXPECT_EQ(num_threads(), 1);
}

TEST(ThreadPool, ResizeAfterUseIsSafe) {
  // Regression: workers created by resize() must adopt the pool's current
  // job generation; otherwise they dereference a stale null job pointer.
  set_num_threads(2);
  std::atomic<int> counter{0};
  for (int round = 0; round < 3; ++round) {
    ThreadPool::global().run_on_all([&](int) { counter.fetch_add(1); });
  }
  set_num_threads(4); // grow *after* the generation counter advanced
  ThreadPool::global().run_on_all([&](int) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 3 * 2 + 4);
  set_num_threads(8);
  ThreadPool::global().run_on_all([&](int) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 3 * 2 + 4 + 8);
  set_num_threads(1);
}

TEST(ThreadPool, BackToBackDispatchesAreLossless) {
  // Stresses the spin-then-sleep dispatch: thousands of tiny jobs in a row
  // mostly hit the lock-free spin path; none may be dropped or double-run.
  set_num_threads(4);
  std::atomic<std::uint64_t> counter{0};
  constexpr int kRounds = 5000;
  for (int round = 0; round < kRounds; ++round) {
    ThreadPool::global().run_on_all([&](int) {
      counter.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(counter.load(), static_cast<std::uint64_t>(kRounds) * 4);
  set_num_threads(1);
}

TEST(ThreadPool, ChunkedLoopNearIndexMax) {
  // Regression: a dynamic loop whose range ends near the maximum Index value
  // must not wrap the shared chunk counter (duplicate or lost chunks).
  set_num_threads(4);
  const std::uint32_t end = std::numeric_limits<std::uint32_t>::max();
  const std::uint32_t begin = end - 10'000;
  std::atomic<std::uint64_t> iterations{0};
  std::atomic<std::uint64_t> sum{0};
  parallel_for_chunked<std::uint32_t>(
      begin, end, 7, [&](const std::uint32_t chunk_begin, const std::uint32_t chunk_end) {
        ASSERT_LE(chunk_begin, chunk_end);
        ASSERT_LE(chunk_end, end);
        iterations.fetch_add(chunk_end - chunk_begin, std::memory_order_relaxed);
        std::uint64_t local = 0;
        for (std::uint32_t i = chunk_begin; i < chunk_end; ++i) {
          local += i - begin;
        }
        sum.fetch_add(local, std::memory_order_relaxed);
      });
  EXPECT_EQ(iterations.load(), 10'000u);
  EXPECT_EQ(sum.load(), 10'000ULL * 9'999ULL / 2);
  set_num_threads(1);
}

// ----------------------------------------------------- NUMA placement ---
//
// These tests must pass on any machine: on single-node or non-Linux hosts
// every policy degrades to a plain aligned zeroed allocation, and nothing
// below asserts actual page-to-node bindings — only policy resolution and
// allocation semantics.

TEST(NumaPlacement, ParsesPolicyNames) {
  EXPECT_EQ(numa::parse_placement("local"), numa::Placement::kLocal);
  EXPECT_EQ(numa::parse_placement("interleaved"), numa::Placement::kInterleaved);
  EXPECT_EQ(numa::parse_placement("blocked"), numa::Placement::kBlocked);
  EXPECT_FALSE(numa::parse_placement("").has_value());
  EXPECT_FALSE(numa::parse_placement("Local").has_value());
  EXPECT_FALSE(numa::parse_placement("firsttouch").has_value());
}

TEST(NumaPlacement, PlacementNameRoundTrips) {
  for (const auto placement : {numa::Placement::kLocal, numa::Placement::kInterleaved,
                               numa::Placement::kBlocked}) {
    EXPECT_EQ(numa::parse_placement(numa::placement_name(placement)), placement);
  }
}

TEST(NumaPlacement, BuiltInTableByCategory) {
  EXPECT_EQ(numa::placement_for_spec("lp/sparse_array", nullptr),
            numa::Placement::kInterleaved);
  EXPECT_EQ(numa::placement_for_spec("fm/gain_table", nullptr),
            numa::Placement::kInterleaved);
  EXPECT_EQ(numa::placement_for_spec("lp/aux", nullptr), numa::Placement::kBlocked);
  EXPECT_EQ(numa::placement_for_spec("partition/partition", nullptr),
            numa::Placement::kBlocked);
  EXPECT_EQ(numa::placement_for_spec("contraction/mapping", nullptr),
            numa::Placement::kBlocked);
  EXPECT_EQ(numa::placement_for_spec("lp/rating_maps", nullptr), numa::Placement::kLocal);
  EXPECT_EQ(numa::placement_for_spec("anything/else", nullptr), numa::Placement::kLocal);
}

TEST(NumaPlacement, SpecOverridesWithLongestPrefix) {
  const char *spec = "fm/=interleaved,fm/gain_table=blocked";
  EXPECT_EQ(numa::placement_for_spec("fm/gain_table", spec), numa::Placement::kBlocked);
  EXPECT_EQ(numa::placement_for_spec("fm/other", spec), numa::Placement::kInterleaved);
  // No matching prefix: fall back to the built-in table.
  EXPECT_EQ(numa::placement_for_spec("lp/sparse_array", spec),
            numa::Placement::kInterleaved);
  // The empty prefix matches everything.
  EXPECT_EQ(numa::placement_for_spec("lp/sparse_array", "=local"), numa::Placement::kLocal);
  // Malformed entries are ignored.
  EXPECT_EQ(numa::placement_for_spec("fm/gain_table", "garbage,fm/=nope"),
            numa::Placement::kInterleaved);
}

TEST(NumaPlacement, PlacedAllocZeroedAlignedAndFreeable) {
  for (const auto placement : {numa::Placement::kLocal, numa::Placement::kInterleaved,
                               numa::Placement::kBlocked}) {
    numa::PlacedBlock block = numa::placed_alloc(10'000, placement);
    ASSERT_NE(block.ptr, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(block.ptr) % 64, 0u);
    const auto *bytes = static_cast<const std::uint8_t *>(block.ptr);
    for (std::size_t i = 0; i < 10'000; i += 997) {
      ASSERT_EQ(bytes[i], 0u);
    }
    numa::placed_free(block);
    EXPECT_EQ(block.ptr, nullptr);
  }
  numa::PlacedBlock empty = numa::placed_alloc(0, numa::Placement::kLocal);
  EXPECT_EQ(empty.ptr, nullptr);
  numa::placed_free(empty); // must be a no-op
}

TEST(NumaPlacement, NumaArrayValueInitializesAndMoves) {
  numa::NumaArray<std::uint64_t> array(1000, numa::Placement::kInterleaved);
  ASSERT_EQ(array.size(), 1000u);
  for (const std::uint64_t value : array) {
    ASSERT_EQ(value, 0u);
  }
  array[7] = 42;
  numa::NumaArray<std::uint64_t> moved = std::move(array);
  EXPECT_EQ(moved.size(), 1000u);
  EXPECT_EQ(moved[7], 42u);
  EXPECT_TRUE(array.empty()); // NOLINT(bugprone-use-after-move): moved-from is empty

  numa::NumaArray<std::uint64_t> assigned;
  assigned = std::move(moved);
  EXPECT_EQ(assigned.size(), 1000u);
  EXPECT_EQ(assigned[7], 42u);

  const numa::NumaArray<std::uint64_t> empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.data(), nullptr);
}

TEST(NumaPlacement, NumaArrayOfAtomicsStartsAtZero) {
  numa::NumaArray<std::atomic<std::int64_t>> array(257, numa::Placement::kBlocked);
  for (std::size_t i = 0; i < array.size(); ++i) {
    ASSERT_EQ(array[i].load(std::memory_order_relaxed), 0);
  }
  array[0].fetch_add(3, std::memory_order_relaxed);
  EXPECT_EQ(array[0].load(std::memory_order_relaxed), 3);
}

TEST(NumaPlacement, EffectiveReportsWithoutCrashing) {
  // On this machine the answer may be either way; the call itself must be
  // valid everywhere (it feeds the mmap-vs-heap decision in placed_alloc).
  const bool effective = numa::placement_effective();
  EXPECT_TRUE(effective || !effective);
}

} // namespace
} // namespace terapart::par
