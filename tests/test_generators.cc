// Tests for the synthetic graph generators: canonical-form validity,
// determinism, and the structural properties each class is supposed to have.
#include <gtest/gtest.h>

#include "generators/benchmark_sets.h"
#include "generators/generators.h"
#include "graph/validation.h"

namespace terapart {
namespace {

class GeneratorValidity : public ::testing::TestWithParam<const char *> {};

INSTANTIATE_TEST_SUITE_P(Specs, GeneratorValidity,
                         ::testing::Values("rgg2d:n=500,deg=10", "rhg:n=500,deg=12,gamma=3.0",
                                           "weblike:n=500,deg=14", "grid2d:rows=22,cols=23",
                                           "gnm:n=400,m=1600", "ba:n=300,attach=5",
                                           "rmat:scale=8,factor=6", "kmer:n=500,deg=4"));

TEST_P(GeneratorValidity, ProducesCanonicalGraph) {
  const CsrGraph graph = gen::by_spec(GetParam(), 42);
  expect_valid_graph(graph);
  EXPECT_GT(graph.n(), 0u);
  EXPECT_GT(graph.m(), 0u);
}

TEST_P(GeneratorValidity, DeterministicPerSeed) {
  const CsrGraph a = gen::by_spec(GetParam(), 42);
  const CsrGraph b = gen::by_spec(GetParam(), 42);
  ASSERT_EQ(a.n(), b.n());
  ASSERT_EQ(a.m(), b.m());
  EXPECT_TRUE(std::equal(a.raw_edges().begin(), a.raw_edges().end(), b.raw_edges().begin()));
}

TEST_P(GeneratorValidity, DifferentSeedsDiffer) {
  if (std::string(GetParam()).rfind("grid2d", 0) == 0) {
    GTEST_SKIP() << "grid is deterministic by construction";
  }
  const CsrGraph a = gen::by_spec(GetParam(), 1);
  const CsrGraph b = gen::by_spec(GetParam(), 2);
  const bool same = a.m() == b.m() &&
                    std::equal(a.raw_edges().begin(), a.raw_edges().end(),
                               b.raw_edges().begin());
  EXPECT_FALSE(same);
}

TEST(Generators, GridStructureIsExact) {
  const CsrGraph graph = gen::grid2d(4, 5);
  EXPECT_EQ(graph.n(), 20u);
  // 4x5 grid: horizontal edges 4*4, vertical 3*5 -> 31 undirected.
  EXPECT_EQ(graph.m(), 2u * 31u);
  EXPECT_EQ(graph.max_degree(), 4u);
  // Corner vertex 0 has exactly neighbors 1 and 5.
  std::vector<NodeID> corner;
  graph.for_each_neighbor(0, [&](const NodeID v, EdgeWeight) { corner.push_back(v); });
  EXPECT_EQ(corner, (std::vector<NodeID>{1, 5}));
}

TEST(Generators, TorusIsRegular) {
  const CsrGraph graph = gen::grid2d(8, 8, /*wrap=*/true);
  for (NodeID u = 0; u < graph.n(); ++u) {
    ASSERT_EQ(graph.degree(u), 4u) << u;
  }
}

TEST(Generators, RggHasNoHighDegreeOutliers) {
  const CsrGraph graph = gen::rgg2d(3000, 16, 7);
  const double average = static_cast<double>(graph.m()) / graph.n();
  EXPECT_GT(average, 8.0);
  EXPECT_LT(graph.max_degree(), 12 * static_cast<NodeID>(average) + 24);
}

TEST(Generators, RhgHasSkewedDegrees) {
  const CsrGraph graph = gen::rhg(3000, 16, 2.6, 7);
  const double average = static_cast<double>(graph.m()) / graph.n();
  // Power-law: the hub degree dwarfs the average.
  EXPECT_GT(graph.max_degree(), 10 * average);
}

TEST(Generators, WeblikeHasHubsAndRuns) {
  const CsrGraph graph = gen::weblike(2000, 20, 9);
  const double average = static_cast<double>(graph.m()) / graph.n();
  EXPECT_GT(graph.max_degree(), 5 * average);
  // Consecutive-ID runs: count adjacent-target pairs; web graphs have many.
  std::uint64_t consecutive = 0;
  for (NodeID u = 0; u < graph.n(); ++u) {
    NodeID previous = kInvalidNodeID;
    graph.for_each_neighbor(u, [&](const NodeID v, EdgeWeight) {
      consecutive += (previous != kInvalidNodeID && v == previous + 1) ? 1 : 0;
      previous = v;
    });
  }
  EXPECT_GT(consecutive, graph.m() / 8);
}

TEST(Generators, GnmEdgeCountApproximatelyRequested) {
  const CsrGraph graph = gen::gnm(1000, 5000, 3);
  // Duplicates/self-loops shave a little off.
  EXPECT_GT(graph.m(), 2u * 4500u);
  EXPECT_LE(graph.m(), 2u * 5000u);
}

TEST(Generators, BarabasiAlbertDegreeSum) {
  const CsrGraph graph = gen::barabasi_albert(500, 4, 5);
  EXPECT_GT(graph.m(), 2u * 400u * 4u / 2u);
  const double average = static_cast<double>(graph.m()) / graph.n();
  EXPECT_GT(graph.max_degree(), 4 * average); // preferential attachment skew
}

TEST(Generators, RandomEdgeWeightsAreDeterministicAndBounded) {
  const CsrGraph base = gen::grid2d(10, 10);
  const CsrGraph a = gen::with_random_edge_weights(base, 50, 7);
  const CsrGraph b = gen::with_random_edge_weights(base, 50, 7);
  ASSERT_TRUE(a.is_edge_weighted());
  EXPECT_TRUE(std::equal(a.raw_edge_weights().begin(), a.raw_edge_weights().end(),
                         b.raw_edge_weights().begin()));
  for (EdgeID e = 0; e < a.m(); ++e) {
    ASSERT_GE(a.edge_weight(e), 1);
    ASSERT_LE(a.edge_weight(e), 50);
  }
  expect_valid_graph(a);
}

TEST(Generators, BySpecRejectsUnknown) {
  EXPECT_THROW((void)gen::by_spec("nosuchthing:n=10", 1), std::invalid_argument);
  EXPECT_THROW((void)gen::by_spec("rgg2d:broken", 1), std::invalid_argument);
}

TEST(BenchmarkSets, SetABuildsAtTinyScale) {
  const auto graphs = gen::benchmark_set_a(gen::SuiteScale::kTiny);
  EXPECT_GE(graphs.size(), 10u);
  for (const auto &named : graphs) {
    const CsrGraph graph = named.build(1);
    expect_valid_graph(graph);
    EXPECT_GT(graph.m(), 0u) << named.name;
  }
}

TEST(BenchmarkSets, SetBBuildsAtTinyScaleWithPaperOrdering) {
  const auto graphs = gen::benchmark_set_b(gen::SuiteScale::kTiny);
  ASSERT_EQ(graphs.size(), 5u);
  std::vector<EdgeID> sizes;
  for (const auto &named : graphs) {
    const CsrGraph graph = named.build(1);
    expect_valid_graph(graph);
    sizes.push_back(graph.m());
  }
  // hyperlink analog is the largest, as in Table I.
  EXPECT_EQ(*std::max_element(sizes.begin(), sizes.end()), sizes.back());
}

} // namespace
} // namespace terapart
