// Tests for the gain tables (Section V): the dense O(nk) table, the sparse
// O(m) table, and the no-table recomputation must all agree with each other
// — initially and after arbitrary move sequences (property fuzzing).
#include <gtest/gtest.h>

#include "common/random.h"
#include "generators/generators.h"
#include "graph/graph_builder.h"
#include "partition/metrics.h"
#include "refinement/dense_gain_table.h"
#include "refinement/on_the_fly_gains.h"
#include "refinement/sparse_gain_table.h"

namespace terapart {
namespace {

std::vector<BlockID> random_partition(const NodeID n, const BlockID k, const std::uint64_t seed) {
  std::vector<BlockID> partition(n);
  Random rng(seed);
  for (auto &b : partition) {
    b = static_cast<BlockID>(rng.next_bounded(k));
  }
  return partition;
}

/// Checks dense/sparse/on-the-fly agreement on every (u, adjacent-block)
/// pair plus a sample of absent blocks.
void expect_tables_agree(const CsrGraph &graph, const PartitionedGraph &partitioned,
                         const DenseGainTable &dense, const SparseGainTable &sparse,
                         const OnTheFlyGains &reference) {
  const BlockID k = partitioned.k();
  for (NodeID u = 0; u < graph.n(); ++u) {
    for (BlockID b = 0; b < k; ++b) {
      const EdgeWeight expected = reference.connection(graph, u, b);
      ASSERT_EQ(dense.connection(graph, u, b), expected) << "dense u=" << u << " b=" << b;
      ASSERT_EQ(sparse.connection(graph, u, b), expected) << "sparse u=" << u << " b=" << b;
    }
  }
}

struct TableCase {
  std::string name;
  std::string spec;
  BlockID k;
  EdgeWeight max_weight; ///< 0 = unweighted
};

class GainTableAgreement : public ::testing::TestWithParam<TableCase> {};

INSTANTIATE_TEST_SUITE_P(
    Cases, GainTableAgreement,
    ::testing::Values(
        TableCase{"grid_k4", "grid2d:rows=12,cols=12", 4, 0},
        TableCase{"grid_k16", "grid2d:rows=10,cols=10", 16, 0},
        // k=32 > max degree: every vertex uses the tiny hash layout.
        TableCase{"rgg_k32", "rgg2d:n=250,deg=8", 32, 0},
        // k=2 <= degrees: most vertices use the dense-row layout.
        TableCase{"rgg_k2", "rgg2d:n=250,deg=8", 2, 0},
        TableCase{"rhg_k8_weighted", "rhg:n=300,deg=10,gamma=3.0", 8, 100},
        // Heavy weights force 32/64-bit value widths.
        TableCase{"grid_heavy", "grid2d:rows=8,cols=8", 4, 1'000'000}),
    [](const auto &info) { return info.param.name; });

TEST_P(GainTableAgreement, InitialAffinitiesMatch) {
  CsrGraph graph = gen::by_spec(GetParam().spec, 31);
  if (GetParam().max_weight > 0) {
    graph = gen::with_random_edge_weights(graph, GetParam().max_weight, 32);
  }
  const BlockID k = GetParam().k;
  PartitionedGraph partitioned(graph, k, random_partition(graph.n(), k, 33));

  DenseGainTable dense(graph.n(), k);
  dense.init(graph, partitioned);
  SparseGainTable sparse(graph, k);
  sparse.init(graph, partitioned);
  OnTheFlyGains reference(graph.n(), k);
  reference.init(graph, partitioned);

  expect_tables_agree(graph, partitioned, dense, sparse, reference);
}

TEST_P(GainTableAgreement, AgreementSurvivesRandomMoveSequences) {
  CsrGraph graph = gen::by_spec(GetParam().spec, 41);
  if (GetParam().max_weight > 0) {
    graph = gen::with_random_edge_weights(graph, GetParam().max_weight, 42);
  }
  const BlockID k = GetParam().k;
  PartitionedGraph partitioned(graph, k, random_partition(graph.n(), k, 43));

  DenseGainTable dense(graph.n(), k);
  dense.init(graph, partitioned);
  SparseGainTable sparse(graph, k);
  sparse.init(graph, partitioned);
  OnTheFlyGains reference(graph.n(), k);
  reference.init(graph, partitioned);

  // Property fuzz: 500 random moves, tables updated incrementally, reference
  // recomputed from scratch at each check point.
  Random rng(44);
  for (int step = 0; step < 500; ++step) {
    const auto u = static_cast<NodeID>(rng.next_bounded(graph.n()));
    const BlockID from = partitioned.block(u);
    const auto to = static_cast<BlockID>(rng.next_bounded(k));
    if (from == to) {
      continue;
    }
    partitioned.force_move(u, graph.node_weight(u), to);
    dense.notify_move(graph, u, from, to);
    sparse.notify_move(graph, u, from, to);

    if (step % 50 == 0) {
      expect_tables_agree(graph, partitioned, dense, sparse, reference);
    }
  }
  expect_tables_agree(graph, partitioned, dense, sparse, reference);
}

TEST(SparseGainTable, DeletionClosesProbeGaps) {
  // A vertex adjacent to many blocks; cycle affinities to zero repeatedly to
  // exercise backward-shift deletion in its tiny hash table.
  std::vector<std::vector<NodeID>> adjacency(9);
  for (NodeID v = 1; v <= 8; ++v) {
    adjacency[0].push_back(v);
    adjacency[v].push_back(0);
  }
  const CsrGraph graph = graph_from_adjacency_unweighted(adjacency);
  const BlockID k = 64; // deg << k: hash layout with capacity ~16
  std::vector<BlockID> partition(9, 0);
  for (NodeID v = 1; v <= 8; ++v) {
    partition[v] = v; // neighbors spread over blocks 1..8
  }
  PartitionedGraph partitioned(graph, k, std::move(partition));
  SparseGainTable table(graph, k);
  table.init(graph, partitioned);

  for (BlockID b = 1; b <= 8; ++b) {
    EXPECT_EQ(table.affinity(0, b), 1);
  }
  // Move each neighbor through several blocks; vertex 0's affinities must
  // track exactly (insertions + deletions to zero).
  Random rng(5);
  OnTheFlyGains reference(graph.n(), k);
  reference.init(graph, partitioned);
  for (int step = 0; step < 200; ++step) {
    const auto v = static_cast<NodeID>(1 + rng.next_bounded(8));
    const BlockID from = partitioned.block(v);
    const auto to = static_cast<BlockID>(rng.next_bounded(k));
    if (from == to) {
      continue;
    }
    partitioned.force_move(v, 1, to);
    table.notify_move(graph, v, from, to);
    for (BlockID b = 0; b < k; ++b) {
      ASSERT_EQ(table.affinity(0, b), reference.connection(graph, 0, b))
          << "step " << step << " block " << b;
    }
  }
}

TEST(SparseGainTable, UsesLessMemoryThanDenseForLargeK) {
  const CsrGraph graph = gen::rgg2d(2000, 10, 3);
  const BlockID k = 512;
  const SparseGainTable sparse(graph, k);
  const DenseGainTable dense(graph.n(), k);
  // O(m) vs O(nk): the gap must be at least an order of magnitude here.
  EXPECT_LT(sparse.memory_bytes() * 10, dense.memory_bytes());
}

TEST(SparseGainTable, DenseRowsForHighDegreeVertices) {
  // Hub with degree 64 >= k = 8 gets a dense row; all k affinities must work.
  std::vector<std::vector<NodeID>> adjacency(65);
  for (NodeID v = 1; v <= 64; ++v) {
    adjacency[0].push_back(v);
    adjacency[v].push_back(0);
  }
  const CsrGraph graph = graph_from_adjacency_unweighted(adjacency);
  const BlockID k = 8;
  std::vector<BlockID> partition(65);
  for (NodeID v = 0; v <= 64; ++v) {
    partition[v] = static_cast<BlockID>(v % k);
  }
  PartitionedGraph partitioned(graph, k, std::move(partition));
  SparseGainTable table(graph, k);
  table.init(graph, partitioned);
  OnTheFlyGains reference(graph.n(), k);
  reference.init(graph, partitioned);
  for (BlockID b = 0; b < k; ++b) {
    EXPECT_EQ(table.affinity(0, b), reference.connection(graph, 0, b));
  }
}

TEST(DenseGainTable, PaddedRowStrideAndAccounting) {
  // Rows are padded to whole cache lines so concurrent moves on different
  // vertices never share a line; accounting must report the padded footprint.
  MemoryTracker::global().reset();
  const CsrGraph graph = gen::grid2d(8, 8);
  {
    DenseGainTable table(graph.n(), 3);
    EXPECT_EQ(table.row_stride() % (kCacheLineBytes / sizeof(EdgeWeight)), 0u);
    EXPECT_GE(table.row_stride(), 3u);
    EXPECT_EQ(table.memory_bytes(),
              static_cast<std::uint64_t>(graph.n()) * table.row_stride() * sizeof(EdgeWeight));
    EXPECT_EQ(MemoryTracker::global().current("fm/gain_table"), table.memory_bytes());
  }
  EXPECT_EQ(MemoryTracker::global().current("fm/gain_table"), 0u);
}

TEST(SparseGainTable, StripedLocksAndAccounting) {
  MemoryTracker::global().reset();
  const CsrGraph graph = gen::grid2d(10, 10);
  {
    SparseGainTable table(graph, 4);
    // Power-of-two stripe count, bounded by the vertex count.
    EXPECT_GE(table.num_lock_stripes(), 1u);
    EXPECT_EQ(table.num_lock_stripes() & (table.num_lock_stripes() - 1), 0u);
    // The tracked bytes include the padded stripes (one cache line each).
    EXPECT_EQ(MemoryTracker::global().current("fm/gain_table"), table.memory_bytes());
    EXPECT_GE(table.memory_bytes(), table.num_lock_stripes() * kCacheLineBytes);
  }
  EXPECT_EQ(MemoryTracker::global().current("fm/gain_table"), 0u);
}

TEST(GainTables, GainFormulaMatchesCutDelta) {
  // gain(u, from, to) = conn(to) - conn(from) must equal the actual cut
  // change when the move is applied.
  const CsrGraph graph = gen::rgg2d(200, 8, 51);
  const BlockID k = 4;
  PartitionedGraph partitioned(graph, k, random_partition(graph.n(), k, 52));
  SparseGainTable table(graph, k);
  table.init(graph, partitioned);

  Random rng(53);
  std::vector<BlockID> snapshot = partitioned.partition();
  for (int step = 0; step < 100; ++step) {
    const auto u = static_cast<NodeID>(rng.next_bounded(graph.n()));
    const BlockID from = partitioned.block(u);
    const auto to = static_cast<BlockID>(rng.next_bounded(k));
    if (from == to) {
      continue;
    }
    const EdgeWeight cut_before = metrics::edge_cut(graph, partitioned.partition());
    const EdgeWeight gain =
        table.connection(graph, u, to) - table.connection(graph, u, from);
    partitioned.force_move(u, graph.node_weight(u), to);
    table.notify_move(graph, u, from, to);
    const EdgeWeight cut_after = metrics::edge_cut(graph, partitioned.partition());
    ASSERT_EQ(cut_before - cut_after, gain) << "step " << step;
  }
}

} // namespace
} // namespace terapart
