// Tests for the simulated distributed layer: graph distribution with ghosts,
// the mailbox, distributed LP + contraction, and the full dKaMinPar /
// XTeraPart driver.
#include <gtest/gtest.h>

#include <set>

#include "distributed/dist_contraction.h"
#include "distributed/dist_partitioner.h"
#include "generators/generators.h"
#include "graph/validation.h"
#include "partition/metrics.h"

namespace terapart::dist {
namespace {

class DistributeTest : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Ranks, DistributeTest, ::testing::Values(1, 2, 3, 4, 8));

TEST_P(DistributeTest, GatherReassemblesTheGraph) {
  const CsrGraph graph = gen::with_random_edge_weights(gen::rhg(600, 10, 3.0, 3), 9, 4);
  const auto parts = distribute_graph(graph, GetParam());
  ASSERT_EQ(parts.size(), static_cast<std::size_t>(GetParam()));
  const CsrGraph gathered = gather_graph(parts);
  ASSERT_EQ(gathered.n(), graph.n());
  ASSERT_EQ(gathered.m(), graph.m());
  EXPECT_EQ(gathered.total_edge_weight(), graph.total_edge_weight());
  for (NodeID u = 0; u < graph.n(); ++u) {
    std::vector<std::pair<NodeID, EdgeWeight>> a;
    std::vector<std::pair<NodeID, EdgeWeight>> b;
    graph.for_each_neighbor(u, [&](const NodeID v, const EdgeWeight w) { a.emplace_back(v, w); });
    gathered.for_each_neighbor(
        u, [&](const NodeID v, const EdgeWeight w) { b.emplace_back(v, w); });
    ASSERT_EQ(a, b) << "vertex " << u;
  }
}

TEST_P(DistributeTest, OwnershipAndGhostsAreConsistent) {
  const CsrGraph graph = gen::rgg2d(500, 10, 7);
  const auto parts = distribute_graph(graph, GetParam());

  NodeID covered = 0;
  for (const DistGraph &part : parts) {
    covered += part.local_n;
    // Every ghost refers to a vertex owned by another rank.
    for (const NodeID global : part.ghost_global) {
      EXPECT_FALSE(part.owns_global(global));
      EXPECT_EQ(part.to_global(part.to_local(global)), global);
    }
    // Ghosted-by lists point at real ghost holders.
    for (NodeID u = 0; u < part.local_n; ++u) {
      for (const std::int32_t r : part.ghosted_by[u]) {
        const DistGraph &other = parts[static_cast<std::size_t>(r)];
        EXPECT_TRUE(other.global_to_ghost.count(part.first_global + u) > 0)
            << "rank " << r << " should ghost " << part.first_global + u;
      }
    }
    // Owner lookup matches the range table.
    for (NodeID g = 0; g < graph.n(); g += 37) {
      const int owner = part.owner_of_global(g);
      EXPECT_TRUE(parts[static_cast<std::size_t>(owner)].owns_global(g));
    }
  }
  EXPECT_EQ(covered, graph.n());
}

TEST_P(DistributeTest, CompressedLocalsDecodeIdentically) {
  const CsrGraph graph = gen::weblike(800, 14, 5);
  DistributeConfig config;
  config.compress = true;
  const auto compressed_parts = distribute_graph(graph, GetParam(), config);
  const auto plain_parts = distribute_graph(graph, GetParam());
  const CsrGraph a = gather_graph(compressed_parts);
  const CsrGraph b = gather_graph(plain_parts);
  ASSERT_EQ(a.m(), b.m());
  EXPECT_TRUE(std::equal(a.raw_edges().begin(), a.raw_edges().end(), b.raw_edges().begin()));
  // Compression must shrink the per-rank footprint on web-like graphs.
  EXPECT_LT(compressed_parts[0].memory_bytes(), plain_parts[0].memory_bytes());
}

TEST(Mailbox, DeliversAllToAll) {
  Mailbox<int> mailbox(3);
  for (int src = 0; src < 3; ++src) {
    for (int dst = 0; dst < 3; ++dst) {
      mailbox.send(src, dst, src * 10 + dst);
    }
  }
  mailbox.exchange();
  for (int dst = 0; dst < 3; ++dst) {
    int received = 0;
    mailbox.for_each_received(dst, [&](const int src, const int message) {
      EXPECT_EQ(message, src * 10 + dst);
      ++received;
    });
    EXPECT_EQ(received, 3);
  }
  EXPECT_EQ(mailbox.messages_delivered(), 9u);
}

TEST(Mailbox, ExchangeClearsOutboxes) {
  Mailbox<int> mailbox(2);
  mailbox.send(0, 1, 42);
  mailbox.exchange();
  mailbox.exchange(); // second exchange delivers nothing
  int received = 0;
  mailbox.for_each_received(1, [&](int, int) { ++received; });
  EXPECT_EQ(received, 0);
}

TEST(DistLp, ClusteringIsConsistentAcrossRanks) {
  const CsrGraph graph = gen::rgg2d(800, 10, 3);
  const auto parts = distribute_graph(graph, 4);
  DistLpConfig config;
  CommStats stats;
  const NodeWeight bound = graph.total_node_weight() / 32;
  const auto labels = dist_lp_cluster(parts, config, bound, 5, stats);

  // Ghost copies must agree with the owner's label after the final exchange.
  for (const DistGraph &part : parts) {
    const auto &local = labels[static_cast<std::size_t>(part.rank)];
    for (NodeID g = 0; g < part.num_ghosts(); ++g) {
      const NodeID global = part.ghost_global[g];
      const DistGraph &owner = parts[static_cast<std::size_t>(part.owner_of_global(global))];
      const auto &owner_labels = labels[static_cast<std::size_t>(owner.rank)];
      ASSERT_EQ(local[part.local_n + g], owner_labels[global - owner.first_global])
          << "stale ghost label for " << global;
    }
  }

  // Cluster weights respect the bound (recomputed globally).
  std::map<ClusterID, NodeWeight> weights;
  for (const DistGraph &part : parts) {
    const auto &local = labels[static_cast<std::size_t>(part.rank)];
    for (NodeID u = 0; u < part.local_n; ++u) {
      weights[local[u]] += part.node_weight(u);
    }
  }
  for (const auto &[cluster, weight] : weights) {
    ASSERT_LE(weight, bound) << "cluster " << cluster;
  }
  EXPECT_GT(stats.supersteps, 0u);
  EXPECT_LT(weights.size(), graph.n()); // it actually clustered something
}

TEST(DistContraction, MatchesAReferenceContraction) {
  const CsrGraph graph = gen::rhg(600, 10, 3.0, 7);
  const auto parts = distribute_graph(graph, 4);
  DistLpConfig config;
  CommStats stats;
  const auto labels =
      dist_lp_cluster(parts, config, graph.total_node_weight() / 16, 3, stats);
  const DistContractionResult result = dist_contract(parts, labels, stats);

  // Assemble the global clustering (owner labels are authoritative).
  std::vector<ClusterID> global_labels(graph.n());
  for (const DistGraph &part : parts) {
    const auto &local = labels[static_cast<std::size_t>(part.rank)];
    for (NodeID u = 0; u < part.local_n; ++u) {
      global_labels[part.first_global + u] = local[u];
    }
  }

  // Distinct labels == coarse vertex count.
  const std::set<ClusterID> distinct(global_labels.begin(), global_labels.end());
  EXPECT_EQ(result.coarse_global_n, static_cast<NodeID>(distinct.size()));

  // The gathered coarse graph must equal a reference aggregation.
  const CsrGraph coarse = gather_graph(result.coarse);
  expect_valid_graph(coarse);
  EXPECT_EQ(coarse.n(), result.coarse_global_n);
  EXPECT_EQ(coarse.total_node_weight(), graph.total_node_weight());

  // Edge weight conservation minus intra-cluster weight.
  EdgeWeight intra = 0;
  for (NodeID u = 0; u < graph.n(); ++u) {
    graph.for_each_neighbor(u, [&](const NodeID v, EdgeWeight w) {
      if (global_labels[u] == global_labels[v]) {
        intra += w;
      }
    });
  }
  EXPECT_EQ(coarse.total_edge_weight(), graph.total_edge_weight() - intra);

  // Mapping consistency: fine vertices with equal labels share a coarse id.
  std::map<ClusterID, NodeID> seen;
  for (const DistGraph &part : parts) {
    const auto &mapping = result.mapping[static_cast<std::size_t>(part.rank)];
    for (NodeID u = 0; u < part.local_n; ++u) {
      const auto [it, inserted] =
          seen.emplace(global_labels[part.first_global + u], mapping[u]);
      ASSERT_EQ(it->second, mapping[u]);
      (void)inserted;
    }
  }
}

class DistPartitionTest : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Ranks, DistPartitionTest, ::testing::Values(1, 2, 4, 8));

TEST_P(DistPartitionTest, EndToEndBalancedWithReasonableCut) {
  const CsrGraph graph = gen::rgg2d(3000, 12, 3);
  const Context ctx = terapart_context(8, 7);
  const DistPartitionResult result = dist_partition(graph, GetParam(), ctx, false);

  ASSERT_EQ(result.partition.size(), graph.n());
  EXPECT_EQ(result.cut, metrics::edge_cut(graph, result.partition));
  EXPECT_TRUE(result.balanced) << "imbalance " << result.imbalance;
  // Multilevel quality: far better than a random assignment would be.
  const double fraction =
      static_cast<double>(result.cut) / static_cast<double>(graph.m() / 2);
  EXPECT_LT(fraction, 0.25);
  if (GetParam() > 1) {
    EXPECT_GT(result.comm.messages, 0u);
  }
}

TEST_P(DistPartitionTest, CompressedVariantMatchesQualityClass) {
  const CsrGraph graph = gen::weblike(2500, 14, 9);
  const Context ctx = terapart_context(4, 3);
  const DistPartitionResult plain = dist_partition(graph, GetParam(), ctx, false);
  const DistPartitionResult compressed = dist_partition(graph, GetParam(), ctx, true);
  EXPECT_TRUE(compressed.balanced);
  // XTeraPart == dKaMinPar + compression: quality must be in the same class.
  EXPECT_LT(compressed.cut, 3 * plain.cut + 100);
  // ... while the per-rank memory goes down on compressible graphs.
  EXPECT_LT(compressed.max_rank_memory, plain.max_rank_memory);
}

} // namespace
} // namespace terapart::dist
