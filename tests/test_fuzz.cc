// Randomized property fuzzing across module boundaries: adversarial
// neighborhoods through the compression codec, random graphs through the
// full partitioning pipeline, and random clusterings through both
// contraction algorithms. Complements the per-module tests with
// no-assumption inputs.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "common/random.h"
#include "coarsening/contraction.h"
#include "compression/encoder.h"
#include "generators/generators.h"
#include "graph/graph_builder.h"
#include "graph/validation.h"
#include "partition/metrics.h"
#include "partition/partitioner.h"
#include "parallel/thread_pool.h"
#include "terapart.h" // umbrella header must stay self-contained
#include "partition/facade.h"

namespace terapart {
namespace {

/// Random canonical graph: n vertices, density and weight style randomized.
CsrGraph random_graph(Random &rng, const NodeID max_n) {
  const auto n = static_cast<NodeID>(2 + rng.next_bounded(max_n - 1));
  const auto edges = static_cast<EdgeID>(rng.next_bounded(4 * static_cast<EdgeID>(n)) + 1);
  const bool weighted = rng.next_bool();
  GraphBuilder builder(n);
  for (EdgeID e = 0; e < edges; ++e) {
    const auto u = static_cast<NodeID>(rng.next_bounded(n));
    const auto v = static_cast<NodeID>(rng.next_bounded(n));
    if (u != v) {
      builder.add_edge(u, v, weighted ? static_cast<EdgeWeight>(1 + rng.next_bounded(100)) : 1);
    }
  }
  if (rng.next_bool(0.3)) {
    std::vector<NodeWeight> node_weights(n);
    for (auto &w : node_weights) {
      w = static_cast<NodeWeight>(1 + rng.next_bounded(10));
    }
    builder.set_node_weights(std::move(node_weights));
  }
  return builder.build(false, weighted);
}

TEST(Fuzz, CompressionRoundTripOnRandomGraphs) {
  Random rng(0xf00d);
  for (int trial = 0; trial < 40; ++trial) {
    const CsrGraph graph = random_graph(rng, 300);
    CompressionConfig config;
    config.high_degree_threshold = static_cast<NodeID>(4 + rng.next_bounded(64));
    config.chunk_size = static_cast<NodeID>(2 + rng.next_bounded(16));
    config.intervals = rng.next_bool();
    const CompressedGraph compressed = compress_graph(graph, config);
    ASSERT_EQ(compressed.m(), graph.m()) << "trial " << trial;
    for (NodeID u = 0; u < graph.n(); ++u) {
      ASSERT_EQ(compressed.degree(u), graph.degree(u)) << "trial " << trial;
      const auto decoded = compressed.decode_sorted(u);
      std::vector<std::pair<NodeID, EdgeWeight>> expected;
      graph.for_each_neighbor(
          u, [&](const NodeID v, const EdgeWeight w) { expected.emplace_back(v, w); });
      ASSERT_EQ(decoded, expected) << "trial " << trial << " vertex " << u;
    }
  }
}

TEST(Fuzz, BlockApiTraversalParityOnRandomGraphs) {
  // Acceptance: block-API traversal must be bit-identical to the per-edge
  // visitor on each representation, and the two representations must agree as
  // sorted (target, weight) sequences, across random graphs and random codec
  // configurations.
  Random rng(0xb10c);
  for (int trial = 0; trial < 40; ++trial) {
    const CsrGraph graph = random_graph(rng, 300);
    CompressionConfig config;
    config.high_degree_threshold = static_cast<NodeID>(4 + rng.next_bounded(64));
    config.chunk_size = static_cast<NodeID>(2 + rng.next_bounded(16));
    config.intervals = rng.next_bool();
    const CompressedGraph compressed = compress_graph(graph, config);

    for (NodeID u = 0; u < graph.n(); ++u) {
      std::vector<std::pair<NodeID, EdgeWeight>> compressed_edges;
      compressed.for_each_neighbor(u, [&](const NodeID v, const EdgeWeight w) {
        compressed_edges.emplace_back(v, w);
      });
      std::vector<std::pair<NodeID, EdgeWeight>> compressed_blocks;
      compressed.for_each_neighbor_block(
          u, [&](const NodeID *ids, const EdgeWeight *ws, const std::size_t count) {
            for (std::size_t i = 0; i < count; ++i) {
              compressed_blocks.emplace_back(ids[i], ws == nullptr ? 1 : ws[i]);
            }
          });
      ASSERT_EQ(compressed_blocks, compressed_edges) << "trial " << trial << " vertex " << u;

      std::vector<std::pair<NodeID, EdgeWeight>> csr_edges;
      graph.for_each_neighbor(
          u, [&](const NodeID v, const EdgeWeight w) { csr_edges.emplace_back(v, w); });
      std::vector<std::pair<NodeID, EdgeWeight>> csr_blocks;
      graph.for_each_neighbor_block(
          u, [&](const NodeID *ids, const EdgeWeight *ws, const std::size_t count) {
            for (std::size_t i = 0; i < count; ++i) {
              csr_blocks.emplace_back(ids[i], ws == nullptr ? 1 : ws[i]);
            }
          });
      ASSERT_EQ(csr_blocks, csr_edges) << "trial " << trial << " vertex " << u;

      std::sort(compressed_blocks.begin(), compressed_blocks.end());
      std::sort(csr_blocks.begin(), csr_blocks.end());
      ASSERT_EQ(compressed_blocks, csr_blocks) << "trial " << trial << " vertex " << u;
    }

    // The ranged sweep over a random subrange must deliver, per vertex, the
    // same (target, weight) sequence as the per-edge visitor, in ascending
    // vertex order, on both representations.
    const auto sweep_begin = static_cast<NodeID>(rng.next_bounded(graph.n() + 1));
    const auto sweep_end =
        sweep_begin + static_cast<NodeID>(rng.next_bounded(graph.n() + 1 - sweep_begin));
    const auto check_sweep = [&](const auto &g) {
      std::vector<std::vector<std::pair<NodeID, EdgeWeight>>> per_node(g.n());
      NodeID prev = sweep_begin;
      g.for_each_neighborhood_block(
          sweep_begin, sweep_end,
          [&](const NodeID u, const NodeID *ids, const EdgeWeight *ws, const std::size_t count) {
            ASSERT_GT(count, 0u) << "trial " << trial;
            ASSERT_GE(u, prev) << "trial " << trial;
            ASSERT_LT(u, sweep_end) << "trial " << trial;
            prev = u;
            for (std::size_t i = 0; i < count; ++i) {
              per_node[u].emplace_back(ids[i], ws == nullptr ? 1 : ws[i]);
            }
          });
      for (NodeID u = sweep_begin; u < sweep_end; ++u) {
        std::vector<std::pair<NodeID, EdgeWeight>> expected;
        g.for_each_neighbor(
            u, [&](const NodeID v, const EdgeWeight w) { expected.emplace_back(v, w); });
        ASSERT_EQ(per_node[u], expected) << "trial " << trial << " vertex " << u;
      }
    };
    check_sweep(compressed);
    check_sweep(graph);
  }
}

TEST(Fuzz, CompressionAdversarialNeighborhoods) {
  // Hand-crafted worst cases: pure runs, alternating parity (no intervals),
  // maximal gaps, and a chunk-boundary-straddling star.
  std::vector<std::vector<NodeID>> adjacency(1000);
  // Vertex 0: a pure run of 200 consecutive IDs.
  for (NodeID v = 100; v < 300; ++v) {
    adjacency[0].push_back(v);
    adjacency[v].push_back(0);
  }
  // Vertex 1: every second ID (interval encoding must not trigger).
  for (NodeID v = 400; v < 700; v += 2) {
    adjacency[1].push_back(v);
    adjacency[v].push_back(1);
  }
  // Vertex 2: extreme gaps.
  for (const NodeID v : {3u, 501u, 999u}) {
    adjacency[2].push_back(v);
    adjacency[v].push_back(2);
  }
  const CsrGraph graph = graph_from_adjacency_unweighted(adjacency);
  for (const NodeID threshold : {4u, 150u, 100'000u}) {
    CompressionConfig config;
    config.high_degree_threshold = threshold;
    config.chunk_size = 7; // forces run-splitting across chunk boundaries
    const CompressedGraph compressed = compress_graph(graph, config);
    for (const NodeID u : {0u, 1u, 2u}) {
      const auto decoded = compressed.decode_sorted(u);
      std::vector<std::pair<NodeID, EdgeWeight>> expected;
      graph.for_each_neighbor(
          u, [&](const NodeID v, const EdgeWeight w) { expected.emplace_back(v, w); });
      ASSERT_EQ(decoded, expected) << "threshold " << threshold << " vertex " << u;
    }
  }
}

TEST(Fuzz, ContractionAlgorithmsAgreeOnRandomClusterings) {
  Random rng(0xcafe);
  for (int trial = 0; trial < 25; ++trial) {
    const CsrGraph graph = random_graph(rng, 250);
    // Random (not LP-produced) clustering: arbitrary label values.
    std::vector<ClusterID> clustering(graph.n());
    const auto num_labels = static_cast<NodeID>(1 + rng.next_bounded(graph.n()));
    for (auto &label : clustering) {
      label = static_cast<ClusterID>(rng.next_bounded(num_labels));
    }

    ContractionConfig buffered;
    buffered.one_pass = false;
    ContractionConfig one_pass;
    one_pass.one_pass = true;
    one_pass.bump_threshold = static_cast<NodeID>(2 + rng.next_bounded(32));
    one_pass.batch_edges = 1 + rng.next_bounded(64);

    const ContractionResult a = contract_clustering(graph, clustering, buffered);
    const ContractionResult b = contract_clustering(graph, clustering, one_pass);
    ASSERT_EQ(a.graph.n(), b.graph.n()) << "trial " << trial;
    ASSERT_EQ(a.graph.m(), b.graph.m()) << "trial " << trial;
    ASSERT_EQ(a.graph.total_edge_weight(), b.graph.total_edge_weight());
    ASSERT_EQ(a.graph.total_node_weight(), b.graph.total_node_weight());
    for (NodeID u = 0; u < graph.n(); ++u) {
      ASSERT_EQ(a.graph.node_weight(a.mapping[u]), b.graph.node_weight(b.mapping[u]));
    }
    expect_valid_graph(b.graph);
  }
}

TEST(Fuzz, PartitionerInvariantsOnRandomGraphs) {
  Random rng(0xdead);
  par::set_num_threads(2);
  for (int trial = 0; trial < 20; ++trial) {
    const CsrGraph graph = random_graph(rng, 600);
    const auto k = static_cast<BlockID>(2 + rng.next_bounded(12));
    Context ctx = rng.next_bool() ? terapart_context(k, rng()) : kaminpar_context(k, rng());
    ctx.use_fm = rng.next_bool(0.3);
    const PartitionResult result = Partitioner(ctx).partition(graph);

    ASSERT_EQ(result.partition.size(), graph.n()) << "trial " << trial;
    for (const BlockID b : result.partition) {
      ASSERT_LT(b, k);
    }
    ASSERT_EQ(result.cut, metrics::edge_cut(graph, result.partition)) << "trial " << trial;
    const auto weights = metrics::block_weights(graph, result.partition, k);
    ASSERT_EQ(result.balanced,
              metrics::is_balanced(weights, graph.total_node_weight(), k, ctx.epsilon));
    // Weighted random graphs can be unbalanceable in corner cases (one heavy
    // vertex); unweighted ones with n >= k must balance.
    if (!graph.is_node_weighted() && graph.n() >= 4 * k) {
      ASSERT_TRUE(result.balanced) << "trial " << trial << " imbalance " << result.imbalance;
    }
  }
  par::set_num_threads(1);
}

// ------------------------------------------------------ malformed file corpus ---

namespace fs = std::filesystem;

class TempDir {
public:
  TempDir() {
    static int counter = 0;
    _path = fs::temp_directory_path() /
            ("terapart_fuzz_" + std::to_string(::getpid()) + "_" + std::to_string(counter++));
    fs::create_directories(_path);
  }
  ~TempDir() { fs::remove_all(_path); }
  [[nodiscard]] fs::path file(const std::string &name) const { return _path / name; }

private:
  fs::path _path;
};

std::vector<std::uint8_t> slurp(const fs::path &path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void spit(const fs::path &path, const std::vector<std::uint8_t> &bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char *>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

/// Runs one candidate file through every TPG entry point. The contract under
/// fuzzing: no crash or assert, and any failure is a typed Io/Format error.
/// Returns true when all readers accepted the file.
bool drive_tpg_readers(const fs::path &path) {
  const auto expect_typed = [&](const Error &error) {
    EXPECT_TRUE(error.kind() == ErrorKind::kIo || error.kind() == ErrorKind::kFormat)
        << error.to_string();
  };

  auto whole = io::try_read_tpg(path);
  if (!whole.ok()) {
    expect_typed(whole.error());
  }

  auto header = io::try_read_tpg_header(path);
  if (!header.ok()) {
    expect_typed(header.error());
  }

  auto opened = io::TpgStreamReader::open(path, 64);
  bool streamed = false;
  if (opened.ok()) {
    io::TpgStreamReader reader = std::move(opened).value();
    io::TpgStreamReader::Packet packet;
    streamed = true;
    while (true) {
      auto next = reader.try_next_packet(packet);
      if (!next.ok()) {
        expect_typed(next.error());
        streamed = false;
        break;
      }
      if (!next.value()) {
        break;
      }
    }
  } else {
    expect_typed(opened.error());
  }

  // Whole-file and streaming validation must agree on acceptance.
  EXPECT_EQ(whole.ok(), streamed) << path;
  return whole.ok();
}

TEST(Fuzz, TruncatedTpgFilesYieldTypedErrors) {
  TempDir dir;
  const CsrGraph graph = gen::with_random_edge_weights(gen::grid2d(12, 12), 50, 3);
  io::write_tpg(dir.file("g.tpg"), graph);
  const std::vector<std::uint8_t> full = slurp(dir.file("g.tpg"));
  ASSERT_GT(full.size(), 64u);

  // Cut points covering the header, each array boundary region, and the tail.
  std::vector<std::size_t> cuts = {0, 1, 7, 8, 16, 39, 40, 41, full.size() - 1};
  for (std::size_t i = 1; i <= 16; ++i) {
    cuts.push_back(full.size() * i / 17);
  }
  for (const std::size_t cut : cuts) {
    const std::vector<std::uint8_t> truncated(full.begin(),
                                              full.begin() + static_cast<std::ptrdiff_t>(cut));
    spit(dir.file("cut.tpg"), truncated);
    EXPECT_FALSE(drive_tpg_readers(dir.file("cut.tpg"))) << "cut at " << cut;
  }
}

TEST(Fuzz, BitFlippedTpgHeadersYieldTypedErrors) {
  TempDir dir;
  const CsrGraph graph = gen::grid2d(10, 10);
  io::write_tpg(dir.file("g.tpg"), graph);
  const std::vector<std::uint8_t> original = slurp(dir.file("g.tpg"));

  // Any single-bit flip in the header changes the magic, a weight flag, or an
  // array length the file size no longer matches — all must be rejected.
  for (std::size_t byte = 0; byte < sizeof(io::TpgHeader); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<std::uint8_t> flipped = original;
      flipped[byte] ^= static_cast<std::uint8_t>(1U << bit);
      spit(dir.file("flip.tpg"), flipped);
      EXPECT_FALSE(drive_tpg_readers(dir.file("flip.tpg")))
          << "byte " << byte << " bit " << bit;
    }
  }
}

TEST(Fuzz, BitFlippedTpgBodiesNeverCrash) {
  TempDir dir;
  const CsrGraph graph = gen::with_random_edge_weights(gen::grid2d(10, 10), 50, 5);
  io::write_tpg(dir.file("g.tpg"), graph);
  const std::vector<std::uint8_t> original = slurp(dir.file("g.tpg"));

  // Body corruption keeps the file size (so the header validates); the
  // structural checks decide. A flip may land in a weight and produce a
  // still-valid file — the invariant under test is "typed error or success",
  // which drive_tpg_readers asserts either way.
  Random rng(0x7069);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> flipped = original;
    const std::size_t byte =
        sizeof(io::TpgHeader) +
        static_cast<std::size_t>(rng.next_bounded(original.size() - sizeof(io::TpgHeader)));
    flipped[byte] ^= static_cast<std::uint8_t>(1U << rng.next_bounded(8));
    spit(dir.file("flip.tpg"), flipped);
    (void)drive_tpg_readers(dir.file("flip.tpg"));
  }
}

TEST(Fuzz, RandomBytesThroughTpgReaders) {
  TempDir dir;
  Random rng(0x5eed);
  for (int trial = 0; trial < 100; ++trial) {
    const auto size = static_cast<std::size_t>(rng.next_bounded(300));
    std::vector<std::uint8_t> bytes(size);
    for (auto &b : bytes) {
      b = static_cast<std::uint8_t>(rng.next_bounded(256));
    }
    spit(dir.file("rand.tpg"), bytes);
    // A random file cannot produce the 64-bit magic; all readers must reject.
    EXPECT_FALSE(drive_tpg_readers(dir.file("rand.tpg"))) << "trial " << trial;
  }
}

TEST(Fuzz, MalformedMetisFilesYieldTypedErrors) {
  TempDir dir;
  const std::vector<std::string> corpus = {
      "",                                        // empty file
      "% only comments\n%\n",                    // no header
      "x 3\n",                                   // junk vertex count
      "3\n1\n2\n3\n",                            // header missing edge count
      "3 2 abc\n2\n1\n\n",                       // junk format code
      "3 2 011 1 9\n2 1\n1 1\n\n",               // extra header token
      "2 1 10 3\n1 2\n1 1\n",                    // ncon != 1
      "18446744073709551616 1\n",                // vertex count overflows 64 bits
      "4294967296 0\n",                          // vertex count exceeds NodeID
      "2 1\n2junk\n1\n",                         // glued token
      "2 1\n3\n1\n",                             // neighbor out of range
      "2 1\n0\n1\n",                             // neighbor index 0 (1-based format)
      "2 1 1\n2\n1 5\n",                         // missing edge weight
      "3 9\n2\n1\n\n",                           // edge count mismatch
      "5 4\n2\n1\n",                             // truncated vertex list
  };
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    {
      std::ofstream out(dir.file("m.metis"));
      out << corpus[i];
    }
    auto result = io::try_read_metis(dir.file("m.metis"));
    ASSERT_FALSE(result.ok()) << "corpus entry " << i;
    EXPECT_EQ(result.error().kind(), ErrorKind::kFormat) << "corpus entry " << i;
    EXPECT_GT(result.error().line, 0u) << "corpus entry " << i;
  }
}

TEST(Fuzz, MetricsConsistencyAcrossRepresentations) {
  Random rng(0xbead);
  for (int trial = 0; trial < 15; ++trial) {
    const CsrGraph graph = random_graph(rng, 400);
    const CompressedGraph compressed = compress_graph(graph);
    std::vector<BlockID> partition(graph.n());
    const BlockID k = 5;
    for (auto &b : partition) {
      b = static_cast<BlockID>(rng.next_bounded(k));
    }
    ASSERT_EQ(metrics::edge_cut(graph, partition), metrics::edge_cut(compressed, partition));
  }
}

} // namespace
} // namespace terapart
