// Tests for the work-stealing runtime: the Chase–Lev deque, the dynamic
// loop scheduler (uniform, weighted, nested, torture), the parallel
// primitives built on top of it, and the NUMA cpulist parser.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/scoped_phase.h"
#include "parallel/numa.h"
#include "parallel/primitives.h"
#include "parallel/scheduler.h"
#include "parallel/thread_pool.h"
#include "parallel/work_stealing_deque.h"

namespace terapart::par {
namespace {

// ---------------------------------------------------------------------------
// WorkStealingDeque
// ---------------------------------------------------------------------------

TEST(WorkStealingDeque, OwnerPopsInLifoOrder) {
  WorkStealingDeque deque;
  for (std::uint64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(deque.push_bottom({i, i + 1}));
  }
  for (std::uint64_t i = 10; i-- > 0;) {
    Range range;
    ASSERT_TRUE(deque.pop_bottom(range));
    EXPECT_EQ(range.begin, i);
    EXPECT_EQ(range.end, i + 1);
  }
  Range range;
  EXPECT_FALSE(deque.pop_bottom(range));
}

TEST(WorkStealingDeque, ThiefStealsOldestFirst) {
  WorkStealingDeque deque;
  for (std::uint64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(deque.push_bottom({i, i + 1}));
  }
  for (std::uint64_t i = 0; i < 5; ++i) {
    Range range;
    ASSERT_EQ(deque.steal_top(range), WorkStealingDeque::Steal::kSuccess);
    EXPECT_EQ(range.begin, i);
  }
  Range range;
  EXPECT_EQ(deque.steal_top(range), WorkStealingDeque::Steal::kEmpty);
}

TEST(WorkStealingDeque, PushFailsWhenFull) {
  WorkStealingDeque deque;
  for (std::size_t i = 0; i < WorkStealingDeque::kCapacity; ++i) {
    ASSERT_TRUE(deque.push_bottom({i, i + 1}));
  }
  EXPECT_FALSE(deque.push_bottom({999, 1000}));
  Range range;
  ASSERT_TRUE(deque.pop_bottom(range));
  EXPECT_TRUE(deque.push_bottom({999, 1000}));
}

TEST(WorkStealingDeque, ResetEmptiesTheDeque) {
  WorkStealingDeque deque;
  ASSERT_TRUE(deque.push_bottom({1, 2}));
  deque.reset();
  Range range;
  EXPECT_FALSE(deque.pop_bottom(range));
  EXPECT_EQ(deque.steal_top(range), WorkStealingDeque::Steal::kEmpty);
}

// Owner pops while raw std::threads steal: every pushed unit-range must be
// executed exactly once, across both sides.
TEST(WorkStealingDeque, ConcurrentStealLosesNothing) {
  constexpr std::uint64_t kRanges = 20'000;
  constexpr int kThieves = 3;
  WorkStealingDeque deque;
  std::vector<std::atomic<std::uint32_t>> seen(kRanges);
  std::atomic<bool> done{false};

  std::vector<std::thread> thieves;
  thieves.reserve(kThieves);
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      Range range;
      while (!done.load(std::memory_order_acquire)) {
        if (deque.steal_top(range) == WorkStealingDeque::Steal::kSuccess) {
          for (std::uint64_t i = range.begin; i < range.end; ++i) {
            seen[i].fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }

  std::uint64_t next = 0;
  while (next < kRanges) {
    // Keep a few entries in flight so thieves have something to race for.
    while (next < kRanges && deque.push_bottom({next, next + 1})) {
      ++next;
    }
    Range range;
    if (deque.pop_bottom(range)) {
      for (std::uint64_t i = range.begin; i < range.end; ++i) {
        seen[i].fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  // Drain what the thieves have not taken yet.
  Range range;
  while (deque.pop_bottom(range)) {
    for (std::uint64_t i = range.begin; i < range.end; ++i) {
      seen[i].fetch_add(1, std::memory_order_relaxed);
    }
  }
  done.store(true, std::memory_order_release);
  for (std::thread &thief : thieves) {
    thief.join();
  }

  for (std::uint64_t i = 0; i < kRanges; ++i) {
    ASSERT_EQ(seen[i].load(), 1u) << "range " << i;
  }
}

// ---------------------------------------------------------------------------
// for_dynamic and friends
// ---------------------------------------------------------------------------

class SchedulerTest : public ::testing::TestWithParam<int> {
protected:
  void SetUp() override { set_num_threads(GetParam()); }
  void TearDown() override { set_num_threads(1); }
};

INSTANTIATE_TEST_SUITE_P(ThreadCounts, SchedulerTest, ::testing::Values(1, 2, 4, 8));

TEST_P(SchedulerTest, ForDynamicCoversRangeExactlyOnce) {
  constexpr std::uint32_t kN = 100'000;
  std::vector<std::atomic<std::uint8_t>> seen(kN);
  for_dynamic<std::uint32_t>(0, kN, [&](const std::uint32_t begin, const std::uint32_t end) {
    for (std::uint32_t i = begin; i < end; ++i) {
      seen[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (std::uint32_t i = 0; i < kN; ++i) {
    ASSERT_EQ(seen[i].load(), 1) << "index " << i;
  }
}

TEST_P(SchedulerTest, ForEachDynamicHandlesEmptyAndSingleton) {
  std::atomic<int> calls{0};
  for_each_dynamic<std::uint32_t>(5, 5, [&](std::uint32_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
  for_each_dynamic<std::uint32_t>(5, 6, [&](const std::uint32_t i) {
    EXPECT_EQ(i, 5u);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST_P(SchedulerTest, WeightedSplitCoversSkewedRangeExactlyOnce) {
  // Power-law-ish weights: one huge element among many tiny ones, plus a
  // run of zero-weight elements (isolated vertices) that must still be
  // visited exactly once.
  constexpr std::uint32_t kN = 10'000;
  std::vector<std::uint64_t> prefix(kN + 1, 0);
  Random rng = Random::stream(42, 0);
  for (std::uint32_t i = 0; i < kN; ++i) {
    std::uint64_t weight = rng.next_bounded(4); // ~25% zero-weight
    if (i == kN / 3) {
      weight = 1'000'000; // the hub
    }
    prefix[i + 1] = prefix[i] + weight;
  }

  std::vector<std::atomic<std::uint8_t>> seen(kN);
  for_dynamic_weighted<std::uint32_t>(
      0, kN, prefix, [&](const std::uint32_t begin, const std::uint32_t end) {
        for (std::uint32_t i = begin; i < end; ++i) {
          seen[i].fetch_add(1, std::memory_order_relaxed);
        }
      });
  for (std::uint32_t i = 0; i < kN; ++i) {
    ASSERT_EQ(seen[i].load(), 1) << "index " << i;
  }
}

TEST_P(SchedulerTest, AllZeroWeightsStillCoverTheRange) {
  constexpr std::uint32_t kN = 1'000;
  const std::vector<std::uint64_t> prefix(kN + 1, 0); // every weight is zero
  std::vector<std::atomic<std::uint8_t>> seen(kN);
  for_dynamic_weighted<std::uint32_t>(
      0, kN, prefix, [&](const std::uint32_t begin, const std::uint32_t end) {
        for (std::uint32_t i = begin; i < end; ++i) {
          seen[i].fetch_add(1, std::memory_order_relaxed);
        }
      });
  for (std::uint32_t i = 0; i < kN; ++i) {
    ASSERT_EQ(seen[i].load(), 1) << "index " << i;
  }
}

TEST_P(SchedulerTest, NestedForDynamicRunsInline) {
  constexpr std::uint32_t kOuter = 64;
  constexpr std::uint32_t kInner = 64;
  std::atomic<std::uint64_t> total{0};
  for_each_dynamic<std::uint32_t>(0, kOuter, [&](std::uint32_t) {
    // Inside a parallel region: must degrade to sequential inline execution
    // (and not deadlock on the shared arena).
    for_each_dynamic<std::uint32_t>(0, kInner, [&](std::uint32_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), static_cast<std::uint64_t>(kOuter) * kInner);
}

// Torture: wildly uneven leaf costs plus nested submits from every leaf,
// repeated to shake out rare interleavings. (The nightly TSan job runs this
// binary; see .github/workflows/ci.yml.)
TEST_P(SchedulerTest, TortureUnevenNestedLoops) {
  constexpr std::uint32_t kN = 2'000;
  for (int repeat = 0; repeat < 5; ++repeat) {
    std::atomic<std::uint64_t> work{0};
    DynamicOptions options;
    options.grain = 1; // maximize scheduling traffic
    for_dynamic<std::uint32_t>(
        0, kN, options, [&](const std::uint32_t begin, const std::uint32_t end) {
          for (std::uint32_t i = begin; i < end; ++i) {
            // Cost varies by ~3 orders of magnitude.
            const std::uint32_t spin = (i % 97 == 0) ? 1000 : (i % 7 == 0) ? 50 : 1;
            std::uint64_t x = i;
            for (std::uint32_t s = 0; s < spin; ++s) {
              x = x * 6364136223846793005ULL + 1442695040888963407ULL;
            }
            // Nested submit from a stolen leaf.
            if (i % 131 == 0) {
              for_each_dynamic<std::uint32_t>(0, 16, [&](std::uint32_t) {
                work.fetch_add(1, std::memory_order_relaxed);
              });
            }
            work.fetch_add(1 + (x & 0), std::memory_order_relaxed);
          }
        });
    const std::uint64_t expected =
        kN + 16ull * ((kN + 130) / 131); // every i, plus the nested loops
    EXPECT_EQ(work.load(), expected);
  }
}

// ---------------------------------------------------------------------------
// Determinism of reductions
// ---------------------------------------------------------------------------

TEST(SchedulerDeterminism, SumDynamicIsIdenticalAcrossThreadCounts) {
  constexpr std::uint32_t kN = 50'000;
  std::vector<std::uint64_t> values(kN);
  Random rng = Random::stream(7, 0);
  for (std::uint64_t &v : values) {
    v = rng.next_bounded(1'000);
  }
  const std::uint64_t expected = std::accumulate(values.begin(), values.end(), std::uint64_t{0});

  for (const int p : {1, 2, 4, 8}) {
    set_num_threads(p);
    const std::uint64_t sum =
        sum_dynamic<std::uint32_t>(0, kN, [&](const std::uint32_t i) { return values[i]; });
    EXPECT_EQ(sum, expected) << "p = " << p;
  }
  set_num_threads(1);
}

// ---------------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------------

TEST_P(SchedulerTest, PrefixSumInclusiveMatchesSequential) {
  constexpr std::size_t kN = 10'000;
  std::vector<std::uint32_t> in(kN);
  Random rng = Random::stream(3, 0);
  for (std::uint32_t &v : in) {
    v = static_cast<std::uint32_t>(rng.next_bounded(10));
  }
  std::vector<std::uint64_t> out(kN);
  const std::uint64_t total = prefix_sum_inclusive<std::uint32_t, std::uint64_t>(in, out);

  std::uint64_t running = 0;
  for (std::size_t i = 0; i < kN; ++i) {
    running += in[i];
    ASSERT_EQ(out[i], running) << "index " << i;
  }
  EXPECT_EQ(total, running);
}

TEST_P(SchedulerTest, CountingSortGroupsByKey) {
  constexpr std::uint32_t kN = 20'000;
  constexpr std::size_t kBuckets = 37;
  std::vector<std::uint32_t> keys(kN);
  Random rng = Random::stream(11, 0);
  for (std::uint32_t &key : keys) {
    key = static_cast<std::uint32_t>(rng.next_bounded(kBuckets));
  }

  std::vector<std::uint64_t> offsets(kBuckets + 1);
  std::vector<std::uint32_t> sorted(kN, 0xFFFFFFFFu);
  counting_sort<std::uint32_t, std::uint64_t>(
      kN, kBuckets, offsets, [&](const std::uint32_t i) { return keys[i]; },
      [&](const std::uint32_t i, const std::uint64_t pos) { sorted[pos] = i; });

  EXPECT_EQ(offsets[0], 0u);
  EXPECT_EQ(offsets[kBuckets], kN);
  std::vector<std::uint8_t> seen(kN, 0);
  for (std::size_t b = 0; b < kBuckets; ++b) {
    for (std::uint64_t pos = offsets[b]; pos < offsets[b + 1]; ++pos) {
      const std::uint32_t i = sorted[pos];
      ASSERT_LT(i, kN);
      ASSERT_EQ(keys[i], b) << "element " << i << " in bucket " << b;
      ASSERT_EQ(seen[i], 0) << "element " << i << " scattered twice";
      seen[i] = 1;
    }
  }
}

TEST_P(SchedulerTest, BatchedAppenderCommitsEveryPush) {
  constexpr std::uint32_t kN = 30'000;
  std::vector<std::uint32_t> out(kN);
  BatchedAppender<std::uint32_t> appender(out, 64);
  for_each_dynamic<std::uint32_t>(0, kN, [&](const std::uint32_t i) {
    if (i % 3 == 0) {
      appender.push(i);
    }
  });
  appender.finish();

  const std::size_t expected = (kN + 2) / 3;
  ASSERT_EQ(appender.size(), expected);
  std::vector<std::uint32_t> committed(out.begin(),
                                       out.begin() + static_cast<std::ptrdiff_t>(expected));
  std::sort(committed.begin(), committed.end());
  for (std::size_t j = 0; j < expected; ++j) {
    ASSERT_EQ(committed[j], 3 * j);
  }
}

TEST(BatchedAppenderSequential, PreservesAppendOrderAtOneThread) {
  set_num_threads(1);
  std::vector<int> out(100);
  BatchedAppender<int> appender(out, 8);
  for (int i = 0; i < 100; ++i) {
    appender.push(i);
  }
  appender.finish();
  ASSERT_EQ(appender.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(out[static_cast<std::size_t>(i)], i);
  }
}

TEST_P(SchedulerTest, FifoLoopSupportsOrderedCommit) {
  // Replicates the PacketCommitter protocol: iteration i spins until i-1 has
  // committed. Deadlock-free only if indices are claimed in increasing order
  // — which is exactly the contract of for_each_index_fifo.
  constexpr std::uint32_t kN = 2'000;
  std::atomic<std::uint32_t> committed{0};
  std::vector<std::uint8_t> order_ok(kN, 0);
  for_each_index_fifo<std::uint32_t>(0, kN, [&](const std::uint32_t i) {
    while (committed.load(std::memory_order_acquire) != i) {
      std::this_thread::yield();
    }
    order_ok[i] = 1;
    committed.store(i + 1, std::memory_order_release);
  });
  EXPECT_EQ(committed.load(), kN);
  for (std::uint32_t i = 0; i < kN; ++i) {
    ASSERT_EQ(order_ok[i], 1) << "index " << i;
  }
}

// ---------------------------------------------------------------------------
// Telemetry
// ---------------------------------------------------------------------------

TEST(SchedulerTelemetry, CountersFlowIntoTheActivePhase) {
  set_num_threads(4);
  PhaseTree tree;
  {
    ActivePhaseScope bind(tree);
    ScopedPhase phase("loop_phase");
    for_each_dynamic<std::uint32_t>(0, 100'000, [](std::uint32_t) {});
  }
  set_num_threads(1);

  const PhaseNode *node = nullptr;
  for (const auto &child : tree.root().children) {
    if (child->name == "loop_phase") {
      node = child.get();
    }
  }
  ASSERT_NE(node, nullptr);
  EXPECT_GT(node->counter("scheduler/tasks"), 0u);
  EXPECT_GE(node->counter("scheduler/max_worker_imbalance"), 0u);
  // steals may legitimately be zero on an idle machine, but the key exists.
  EXPECT_NE(node->counters.find("scheduler/steals"), node->counters.end());
}

TEST(SchedulerTelemetry, GlobalStatsCountLoopsAndTasks) {
  set_num_threads(2);
  const SchedulerStats before = scheduler_stats();
  for_each_dynamic<std::uint32_t>(0, 10'000, [](std::uint32_t) {});
  const SchedulerStats after = scheduler_stats();
  set_num_threads(1);
  EXPECT_EQ(after.loops, before.loops + 1);
  EXPECT_GT(after.tasks, before.tasks);
}

// ---------------------------------------------------------------------------
// NUMA cpulist parsing
// ---------------------------------------------------------------------------

TEST(NumaCpulist, ParsesSingletonsRangesAndMixes) {
  EXPECT_EQ(numa::parse_cpulist("0"), (std::vector<int>{0}));
  EXPECT_EQ(numa::parse_cpulist("0-3"), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(numa::parse_cpulist("0-2,8,10-11"), (std::vector<int>{0, 1, 2, 8, 10, 11}));
  EXPECT_EQ(numa::parse_cpulist(" 4-5 \n"), (std::vector<int>{4, 5}));
}

TEST(NumaCpulist, RejectsMalformedInput) {
  EXPECT_TRUE(numa::parse_cpulist("").empty());
  EXPECT_TRUE(numa::parse_cpulist("abc").empty());
  EXPECT_TRUE(numa::parse_cpulist("3-1").empty());
  // Stray separators are tolerated (the kernel never emits them, but being
  // lenient here costs nothing).
  EXPECT_EQ(numa::parse_cpulist("1,,2"), (std::vector<int>{1, 2}));
}

TEST(NumaTopology, WorkerAssignmentIsTotalAndMonotone) {
  const int nodes = numa::topology().num_nodes();
  if (nodes == 0) {
    GTEST_SKIP() << "no NUMA topology exposed (container or non-Linux)";
  }
  constexpr int kWorkers = 16;
  int previous = 0;
  for (int w = 0; w < kWorkers; ++w) {
    const int node = numa::node_of_worker(w, kWorkers);
    ASSERT_GE(node, 0);
    ASSERT_LT(node, nodes);
    ASSERT_GE(node, previous) << "compact fill must be monotone";
    previous = node;
  }
}

} // namespace
} // namespace terapart::par
