// Drives every fault-injection point (DESIGN.md §9) through the ingestion
// and partitioning pipeline, asserting that each armed fault yields either a
// clean typed error or a successful degraded run — never a crash, leak, or
// corrupted partition. The arming tests skip themselves when the library was
// built without TP_FAULT_INJECTION; the always-on tests cover the no-op
// behavior of the disarmed hooks.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <vector>

#include "common/fault_injection.h"
#include "common/run_report.h"
#include "compression/parallel_compressor.h"
#include "generators/generators.h"
#include "graph/graph_io.h"
#include "partition/facade.h"
#include "partition/metrics.h"
#include "partition/reporting.h"

namespace terapart {
namespace {

namespace fs = std::filesystem;
using fault::Point;

class TempDir {
public:
  TempDir() {
    _path = fs::temp_directory_path() /
            ("terapart_fault_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter()++));
    fs::create_directories(_path);
  }
  ~TempDir() { fs::remove_all(_path); }
  [[nodiscard]] fs::path file(const std::string &name) const { return _path / name; }

private:
  static int &counter() {
    static int value = 0;
    return value;
  }
  fs::path _path;
};

#define TP_REQUIRE_FAULT_INJECTION()                                                             \
  if (!fault::kEnabled) {                                                                        \
    GTEST_SKIP() << "built without TP_FAULT_INJECTION";                                          \
  }

Context small_context(const BlockID k = 4) {
  auto ctx = ContextBuilder(Preset::kTeraPart).k(k).seed(42).build();
  EXPECT_TRUE(ctx.ok());
  return std::move(ctx).value();
}

void expect_valid_partition(const CsrGraph &graph, const PartitionResult &result,
                            const BlockID k) {
  ASSERT_EQ(result.partition.size(), graph.n());
  for (const BlockID b : result.partition) {
    EXPECT_LT(b, k);
  }
  EXPECT_EQ(result.cut, metrics::edge_cut(graph, result.partition));
}

// ------------------------------------------------------- disarmed behavior --

TEST(FaultInjection, DisarmedPointsNeverFire) {
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(fault::should_fail(Point::kShortRead));
    EXPECT_FALSE(fault::should_fail(Point::kMmapReserve));
  }
  fault::maybe_stall(Point::kWorkerStall); // must be a cheap no-op
  EXPECT_FALSE(TP_FAULT_HIT(Point::kBatchAlloc));
}

// --------------------------------------------------------- the spec itself --

TEST(FaultInjection, SkipFirstAndMaxFiresAreExact) {
  TP_REQUIRE_FAULT_INJECTION();
  fault::ScopedFault armed(Point::kShortRead, /*skip_first=*/2, /*max_fires=*/3);
  std::vector<bool> fired;
  for (int i = 0; i < 10; ++i) {
    fired.push_back(fault::should_fail(Point::kShortRead));
  }
  const std::vector<bool> expected = {false, false, true, true, true,
                                      false, false, false, false, false};
  EXPECT_EQ(fired, expected);
  EXPECT_EQ(fault::fire_count(Point::kShortRead), 3u);
  EXPECT_EQ(fault::evaluation_count(Point::kShortRead), 10u);
}

TEST(FaultInjection, SeededProbabilityIsReproducible) {
  TP_REQUIRE_FAULT_INJECTION();
  const fault::FaultSpec spec{.skip_first = 0, .max_fires = 0, .probability = 0.5, .seed = 7};
  std::vector<bool> first_run;
  {
    fault::ScopedFault armed(Point::kBatchAlloc, spec);
    for (int i = 0; i < 200; ++i) {
      first_run.push_back(fault::should_fail(Point::kBatchAlloc));
    }
  }
  std::vector<bool> second_run;
  {
    fault::ScopedFault armed(Point::kBatchAlloc, spec);
    for (int i = 0; i < 200; ++i) {
      second_run.push_back(fault::should_fail(Point::kBatchAlloc));
    }
  }
  EXPECT_EQ(first_run, second_run);
  // An unbiased coin over 200 draws lands well inside [40, 160].
  const auto fires = static_cast<int>(fault::fire_count(Point::kBatchAlloc));
  EXPECT_GT(fires, 40);
  EXPECT_LT(fires, 160);
}

// --------------------------------------------------------------- kShortRead --

TEST(FaultInjection, ShortReadInHeaderYieldsTypedError) {
  TP_REQUIRE_FAULT_INJECTION();
  TempDir dir;
  io::write_tpg(dir.file("g.tpg"), gen::grid2d(10, 10));
  fault::ScopedFault armed(Point::kShortRead, 0, 1);
  auto result = io::try_read_tpg(dir.file("g.tpg"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kShortRead);
  EXPECT_EQ(result.error().kind(), ErrorKind::kIo);
  EXPECT_FALSE(result.error().path.empty());
}

TEST(FaultInjection, ShortReadMidStreamPoisonsReader) {
  TP_REQUIRE_FAULT_INJECTION();
  TempDir dir;
  io::write_tpg(dir.file("g.tpg"), gen::grid2d(30, 30));
  auto opened = io::TpgStreamReader::open(dir.file("g.tpg"), 64);
  ASSERT_TRUE(opened.ok());
  io::TpgStreamReader reader = std::move(opened).value();
  io::TpgStreamReader::Packet packet;
  // Fail the 3rd raw read after open; the reader must surface a typed error
  // and refuse to continue afterwards.
  fault::ScopedFault armed(Point::kShortRead, 2, 1);
  bool saw_error = false;
  while (true) {
    auto next = reader.try_next_packet(packet);
    if (!next.ok()) {
      EXPECT_EQ(next.error().code, ErrorCode::kShortRead);
      saw_error = true;
      break;
    }
    if (!next.value()) {
      break;
    }
  }
  ASSERT_TRUE(saw_error);
  auto after = reader.try_next_packet(packet);
  ASSERT_FALSE(after.ok());
}

TEST(FaultInjection, TransientShortReadDegradesToCsrThroughFacade) {
  TP_REQUIRE_FAULT_INJECTION();
  TempDir dir;
  const CsrGraph graph = gen::grid2d(30, 30);
  io::write_tpg(dir.file("g.tpg"), graph);
  const Partitioner partitioner(small_context());
  // The compressed single-pass load dies on a mid-stream short read; the
  // facade then reloads the file as uncompressed CSR (the fault budget is
  // exhausted by then) and the run succeeds in degraded mode.
  fault::ScopedFault armed(Point::kShortRead, 3, 1);
  auto result = partitioner.partition_file(dir.file("g.tpg"));
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  EXPECT_TRUE(result.value().degraded.input_fallback_csr);
  EXPECT_TRUE(result.value().degraded.any());
  expect_valid_partition(graph, result.value(), 4);
}

TEST(FaultInjection, PersistentShortReadYieldsTypedErrorThroughFacade) {
  TP_REQUIRE_FAULT_INJECTION();
  TempDir dir;
  io::write_tpg(dir.file("g.tpg"), gen::grid2d(20, 20));
  const Partitioner partitioner(small_context());
  // Every read fails: both the compressed path and the CSR fallback die, and
  // the caller gets the fallback's typed error — no exception escapes.
  fault::ScopedFault armed(Point::kShortRead, fault::FaultSpec{.max_fires = 0});
  auto result = partitioner.partition_file(dir.file("g.tpg"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kShortRead);
}

// -------------------------------------------------------------- kShortWrite --

TEST(FaultInjection, ShortWriteYieldsTypedError) {
  TP_REQUIRE_FAULT_INJECTION();
  TempDir dir;
  const CsrGraph graph = gen::grid2d(10, 10);
  fault::ScopedFault armed(Point::kShortWrite, 0, 1);
  auto status = io::try_write_tpg(dir.file("g.tpg"), graph);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, ErrorCode::kShortWrite);
  EXPECT_EQ(status.error().kind(), ErrorKind::kIo);
}

// ------------------------------------------------------------- kMmapReserve --

TEST(FaultInjection, ReserveFailureDegradesCompressorToChunkedGrowth) {
  TP_REQUIRE_FAULT_INJECTION();
  TempDir dir;
  const CsrGraph graph = gen::rgg2d(2000, 10, 1);
  io::write_tpg(dir.file("g.tpg"), graph);

  auto baseline = try_compress_tpg_single_pass(dir.file("g.tpg"));
  ASSERT_TRUE(baseline.ok());
  ASSERT_FALSE(baseline.value().degraded_chunked_growth);

  // Only the overcommit upper-bound reservation fails; the exact-sized final
  // reservation succeeds, so the run completes in degraded mode with a
  // byte-identical compressed graph.
  fault::ScopedFault armed(Point::kMmapReserve, 0, 1);
  auto degraded = try_compress_tpg_single_pass(dir.file("g.tpg"));
  ASSERT_TRUE(degraded.ok()) << degraded.error().to_string();
  EXPECT_TRUE(degraded.value().degraded_chunked_growth);

  const CompressedGraph &a = baseline.value().graph;
  const CompressedGraph &b = degraded.value().graph;
  ASSERT_EQ(a.n(), b.n());
  ASSERT_EQ(a.m(), b.m());
  for (NodeID u = 0; u < a.n(); ++u) {
    std::vector<NodeID> na;
    std::vector<NodeID> nb;
    a.for_each_neighbor(u, [&](const NodeID v, EdgeWeight) { na.push_back(v); });
    b.for_each_neighbor(u, [&](const NodeID v, EdgeWeight) { nb.push_back(v); });
    ASSERT_EQ(na, nb) << "vertex " << u;
  }
}

TEST(FaultInjection, PersistentReserveFailureDegradesWholePipeline) {
  TP_REQUIRE_FAULT_INJECTION();
  TempDir dir;
  const CsrGraph graph = gen::grid2d(40, 40);
  io::write_tpg(dir.file("g.tpg"), graph);
  const BlockID k = 4;
  const Partitioner partitioner(small_context(k));

  // Every overcommit reservation in the process fails: the compressor cannot
  // even materialize its chunked stream (the exact reservation fails too), so
  // the facade falls back to CSR; one-pass contraction falls back to buffered
  // on every level. The run must still produce a valid partition.
  fault::ScopedFault armed(Point::kMmapReserve, fault::FaultSpec{.max_fires = 0});
  auto result = partitioner.partition_file(dir.file("g.tpg"));
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  EXPECT_TRUE(result.value().degraded.input_fallback_csr);
  EXPECT_TRUE(result.value().degraded.contraction_buffered);
  EXPECT_TRUE(result.value().degraded.any());
  expect_valid_partition(graph, result.value(), k);

  // The degradations must be recorded in the RunReport telemetry.
  RunReport report("test_fault_injection");
  fill_run_report(report, graph, dir.file("g.tpg").string(), partitioner.context(),
                  result.value());
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"degraded_mode\""), std::string::npos);
  EXPECT_NE(json.find("\"input_fallback_csr\": true"), std::string::npos);
  EXPECT_NE(json.find("\"contraction_buffered\": true"), std::string::npos);
}

// -------------------------------------------------------------- kBatchAlloc --

TEST(FaultInjection, BatchAllocFailureFallsBackToBufferedContraction) {
  TP_REQUIRE_FAULT_INJECTION();
  const CsrGraph graph = gen::rgg2d(3000, 8, 1);
  const BlockID k = 4;
  const Partitioner partitioner(small_context(k));

  auto baseline = partitioner.try_partition(graph);
  ASSERT_TRUE(baseline.ok());
  EXPECT_FALSE(baseline.value().degraded.contraction_buffered);

  fault::ScopedFault armed(Point::kBatchAlloc, fault::FaultSpec{.max_fires = 0});
  auto result = partitioner.try_partition(graph);
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  EXPECT_TRUE(result.value().degraded.contraction_buffered);
  expect_valid_partition(graph, result.value(), k);
  // Buffered contraction computes the same coarse graphs: identical runs.
  EXPECT_EQ(result.value().cut, baseline.value().cut);
  EXPECT_EQ(result.value().partition, baseline.value().partition);
}

TEST(FaultInjection, ChunkAllocFailureInDegradedCompressorIsTypedError) {
  TP_REQUIRE_FAULT_INJECTION();
  TempDir dir;
  io::write_tpg(dir.file("g.tpg"), gen::grid2d(30, 30));
  // Reservation fails -> chunked growth; the first chunk allocation fails
  // too -> the compressor must report a typed resource error, not crash.
  fault::ScopedFault reserve(Point::kMmapReserve, 0, 1);
  fault::ScopedFault chunk(Point::kBatchAlloc, 0, 1);
  auto result = try_compress_tpg_single_pass(dir.file("g.tpg"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kAllocFailed);
  EXPECT_EQ(result.error().kind(), ErrorKind::kResource);
}

// ------------------------------------------------------------- kWorkerStall --

TEST(FaultInjection, WorkerStallsDoNotPerturbCompressedBytes) {
  TP_REQUIRE_FAULT_INJECTION();
  const CsrGraph graph = gen::rgg2d(2000, 10, 1);
  // Small packets so the stall point is evaluated once per packet, many times.
  ParallelCompressionConfig config;
  config.packet_edges = 256;
  const CompressedGraph baseline = compress_graph_parallel(graph, config);
  // Randomly stall ~30% of packet commits; the ordered committer must still
  // produce byte-identical output.
  fault::ScopedFault armed(
      Point::kWorkerStall,
      fault::FaultSpec{.skip_first = 0, .max_fires = 0, .probability = 0.3, .seed = 123});
  const CompressedGraph stalled = compress_graph_parallel(graph, config);
  EXPECT_GT(fault::fire_count(Point::kWorkerStall), 0u);
  ASSERT_EQ(baseline.memory_bytes(), stalled.memory_bytes());
  ASSERT_EQ(baseline.n(), stalled.n());
  for (NodeID u = 0; u < baseline.n(); ++u) {
    std::vector<NodeID> na;
    std::vector<NodeID> nb;
    baseline.for_each_neighbor(u, [&](const NodeID v, EdgeWeight) { na.push_back(v); });
    stalled.for_each_neighbor(u, [&](const NodeID v, EdgeWeight) { nb.push_back(v); });
    ASSERT_EQ(na, nb) << "vertex " << u;
  }
}

} // namespace
} // namespace terapart
