/// Tests for the telemetry subsystem: MetricsRegistry (concurrent counter
/// increments, shard merge determinism), the JSON layer (round-trips through
/// the strict parser), ScopedPhase/PhaseTree (hierarchy shape, re-entry
/// accumulation, memory watermarks not disturbing global peaks), and
/// RunReport (schema fields present and round-trippable).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/memory_tracker.h"
#include "common/metrics_registry.h"
#include "common/run_report.h"
#include "common/scoped_phase.h"
#include "parallel/parallel_for.h"
#include "parallel/thread_pool.h"

namespace terapart {
namespace {

TEST(Json, RoundTripsScalarsAndContainers) {
  json::Value doc = json::Object{
      {"null", nullptr},
      {"bool", true},
      {"int", std::int64_t{-42}},
      {"uint", std::uint64_t{18'446'744'073'709'551'615ull}},
      {"double", 2.5},
      {"string", "hello \"world\"\n\tunicode: é"},
      {"array", json::Array{1, 2, 3}},
      {"object", json::Object{{"nested", "yes"}}},
  };

  for (const int indent : {-1, 0, 2}) {
    const std::string text = doc.dump(indent);
    json::Value parsed;
    std::string error;
    ASSERT_TRUE(json::parse(text, parsed, &error)) << error << "\n" << text;
    // Second dump must be byte-identical: type-stable round-trip.
    EXPECT_EQ(parsed.dump(indent), text);
  }

  EXPECT_EQ(doc.find("uint")->as_uint64(), 18'446'744'073'709'551'615ull);
  EXPECT_EQ(doc.find("int")->as_int64(), -42);
  EXPECT_DOUBLE_EQ(doc.find("double")->as_double(), 2.5);
  EXPECT_EQ(doc.find("missing"), nullptr);
}

TEST(Json, ParserRejectsMalformedInput) {
  json::Value out;
  EXPECT_FALSE(json::parse("", out));
  EXPECT_FALSE(json::parse("{", out));
  EXPECT_FALSE(json::parse("[1,]", out));
  EXPECT_FALSE(json::parse("{\"a\": 1,}", out));
  EXPECT_FALSE(json::parse("nul", out));
  EXPECT_FALSE(json::parse("\"unterminated", out));
  EXPECT_FALSE(json::parse("1 2", out));
}

TEST(Json, NonFiniteDoublesSerializeAsNull) {
  const json::Value doc =
      json::Array{std::nan(""), std::numeric_limits<double>::infinity()};
  EXPECT_EQ(doc.dump(-1), "[null,null]");
}

TEST(MetricsRegistry, CountersGaugesAndStats) {
  MetricsRegistry registry;
  registry.add_counter("a.b");
  registry.add_counter("a.b", 9);
  registry.set_gauge("g", 1.5);
  registry.set_gauge("g", 2.5);
  registry.record("s", 1.0);
  registry.record("s", 3.0);

  EXPECT_EQ(registry.counter("a.b"), 10u);
  EXPECT_EQ(registry.counter("missing"), 0u);
  EXPECT_DOUBLE_EQ(registry.gauge("g"), 2.5);
  const MetricStat stat = registry.stat("s");
  EXPECT_EQ(stat.count, 2u);
  EXPECT_DOUBLE_EQ(stat.sum, 4.0);
  EXPECT_DOUBLE_EQ(stat.min, 1.0);
  EXPECT_DOUBLE_EQ(stat.max, 3.0);
  EXPECT_DOUBLE_EQ(stat.mean(), 2.0);
}

TEST(MetricsRegistry, ConcurrentIncrementsAreLossless) {
  MetricsRegistry registry;
  constexpr std::uint64_t kPerThread = 20'000;
  par::set_num_threads(4);
  par::ThreadPool::global().run_on_all([&](int) {
    for (std::uint64_t i = 0; i < kPerThread; ++i) {
      registry.add_counter("concurrent.hits");
    }
  });
  EXPECT_EQ(registry.counter("concurrent.hits"),
            kPerThread * static_cast<std::uint64_t>(par::num_threads()));
}

TEST(MetricsRegistry, ShardMergeIsDeterministic) {
  // Two registries fed the same per-thread values through shards must agree
  // exactly, regardless of merge order (sum/min/max are order-insensitive).
  MetricsRegistry first;
  MetricsRegistry second;
  par::set_num_threads(4);
  for (MetricsRegistry *registry : {&first, &second}) {
    par::ThreadPool::global().run_on_all([&](const int t) {
      MetricsRegistry::Shard shard(*registry);
      for (int i = 0; i < 1000; ++i) {
        shard.add("packets");
        shard.add("bytes", static_cast<std::uint64_t>(t + 1));
        shard.record("packet_size", static_cast<double>((t * 1000 + i) % 97));
      }
    });
  }
  EXPECT_EQ(first.counter("packets"), second.counter("packets"));
  EXPECT_EQ(first.counter("bytes"), second.counter("bytes"));
  const MetricStat a = first.stat("packet_size");
  const MetricStat b = second.stat("packet_size");
  EXPECT_EQ(a.count, b.count);
  EXPECT_DOUBLE_EQ(a.sum, b.sum);
  EXPECT_DOUBLE_EQ(a.min, b.min);
  EXPECT_DOUBLE_EQ(a.max, b.max);
}

TEST(MetricsRegistry, JsonRoundTrip) {
  MetricsRegistry registry;
  registry.add_counter("c.one", 7);
  registry.set_gauge("g.two", 0.5);
  registry.record("s.three", 11.0);

  const std::string text = registry.to_json().dump();
  json::Value parsed;
  std::string error;
  ASSERT_TRUE(json::parse(text, parsed, &error)) << error;
  EXPECT_EQ(parsed.find("counters")->find("c.one")->as_uint64(), 7u);
  EXPECT_DOUBLE_EQ(parsed.find("gauges")->find("g.two")->as_double(), 0.5);
  EXPECT_EQ(parsed.find("stats")->find("s.three")->find("count")->as_uint64(), 1u);
  EXPECT_DOUBLE_EQ(parsed.find("stats")->find("s.three")->find("mean")->as_double(), 11.0);
}

TEST(ScopedPhase, BuildsHierarchyAndAccumulatesReentries) {
  PhaseTree tree;
  {
    ActivePhaseScope bind(tree);
    for (int round = 0; round < 3; ++round) {
      ScopedPhase outer("coarsening");
      ScopedPhase inner("lp_clustering");
    }
    ScopedPhase other("refinement");
  }

  const PhaseNode *coarsening = tree.root().child("coarsening");
  ASSERT_NE(coarsening, nullptr);
  EXPECT_EQ(coarsening->calls, 3u);
  const PhaseNode *lp = coarsening->child("lp_clustering");
  ASSERT_NE(lp, nullptr);
  EXPECT_EQ(lp->calls, 3u);
  ASSERT_NE(tree.root().child("refinement"), nullptr);
  EXPECT_GE(coarsening->wall_s, lp->wall_s);
  EXPECT_GT(tree.total_s("coarsening"), 0.0);
}

TEST(ScopedPhase, NoOpWithoutBindingAndOnWorkerThreads) {
  // Unbound: must not crash and must not create nodes anywhere.
  { ScopedPhase phase("orphan"); }

  PhaseTree tree;
  ActivePhaseScope bind(tree);
  par::set_num_threads(4);
  par::ThreadPool::global().run_on_all([&](const int t) {
    if (t != 0) {
      // Worker threads have no binding: inert by the driver-thread contract.
      ScopedPhase phase("worker_phase");
    }
  });
  EXPECT_EQ(tree.root().child("worker_phase"), nullptr);
  EXPECT_EQ(tree.root().child("orphan"), nullptr);
}

TEST(ScopedPhase, RecordsMemoryDeltaWithoutDisturbingGlobalPeak) {
  MemoryTracker &tracker = MemoryTracker::global();
  tracker.reset();
  {
    TrackedAlloc baseline("test/baseline", 1 << 20);
    tracker.reset_peak();
    const std::uint64_t peak_before = tracker.peak();

    PhaseTree tree;
    {
      ActivePhaseScope bind(tree);
      ScopedPhase phase("allocating");
      TrackedAlloc spike("test/spike", 4 << 20);
    }
    const PhaseNode *phase = tree.root().child("allocating");
    ASSERT_NE(phase, nullptr);
    EXPECT_EQ(phase->peak_mem_delta_bytes, static_cast<std::uint64_t>(4 << 20));
    EXPECT_EQ(phase->mem_enter_bytes, static_cast<std::uint64_t>(1 << 20));

    // The watermark API must not reset the global peak (benches read it
    // across whole runs).
    EXPECT_GE(tracker.peak(), peak_before + (4 << 20));
  }
  tracker.reset();
}

TEST(MemoryTracker, WatermarksNestAndExhaustGracefully) {
  MemoryTracker &tracker = MemoryTracker::global();
  tracker.reset();

  const int outer = tracker.push_watermark();
  ASSERT_GE(outer, 0);
  {
    TrackedAlloc a("test/wm", 1000);
    const int inner = tracker.push_watermark();
    ASSERT_GE(inner, 0);
    {
      TrackedAlloc b("test/wm", 500);
      EXPECT_EQ(tracker.pop_watermark(inner), 1500u);
    }
  }
  EXPECT_EQ(tracker.pop_watermark(outer), 1500u);

  // Exhaust all slots: further pushes return -1 and pop(-1) degrades to the
  // current total instead of crashing.
  std::vector<int> slots;
  for (int i = 0; i < MemoryTracker::kMaxWatermarks + 4; ++i) {
    slots.push_back(tracker.push_watermark());
  }
  EXPECT_EQ(slots.back(), -1);
  EXPECT_EQ(tracker.pop_watermark(-1), tracker.current());
  for (const int slot : slots) {
    if (slot >= 0) {
      (void)tracker.pop_watermark(slot);
    }
  }
  tracker.reset();
}

TEST(RunReport, ContainsSchemaAndAllStandardSections) {
  MetricsRegistry registry;
  registry.add_counter("x", 3);
  MemoryTracker &tracker = MemoryTracker::global();

  PhaseTree phases;
  {
    ActivePhaseScope bind(phases);
    ScopedPhase phase("coarsening");
  }

  RunReport report("test_tool");
  report.set_graph("gen:test", 100, 400, 7, 12345);
  report.set_config(json::Object{{"k", 4}});
  report.set_phases(phases);
  report.set_quality(42, 0.01, true);
  report.capture_metrics(registry);
  report.capture_memory(tracker);
  report.add_section("extra", json::Array{1, 2});

  json::Value parsed;
  std::string error;
  ASSERT_TRUE(json::parse(report.to_json(), parsed, &error)) << error;
  EXPECT_EQ(parsed.find("schema")->as_string(), kRunReportSchema);
  EXPECT_EQ(parsed.find("tool")->as_string(), "test_tool");
  EXPECT_EQ(parsed.find("graph")->find("n")->as_uint64(), 100u);
  EXPECT_EQ(parsed.find("config")->find("k")->as_int64(), 4);
  EXPECT_NE(parsed.find("phases")->find("children"), nullptr);
  EXPECT_EQ(parsed.find("quality")->find("cut")->as_int64(), 42);
  EXPECT_TRUE(parsed.find("quality")->find("balanced")->as_bool());
  EXPECT_EQ(parsed.find("metrics")->find("counters")->find("x")->as_uint64(), 3u);
  EXPECT_NE(parsed.find("memory")->find("peak_bytes"), nullptr);
  EXPECT_EQ(parsed.find("extra")->size(), 2u);

  // NDJSON form: exactly one line, same document.
  const std::string line = report.to_ndjson_line();
  ASSERT_FALSE(line.empty());
  EXPECT_EQ(line.back(), '\n');
  EXPECT_EQ(line.find('\n'), line.size() - 1);
  json::Value reparsed;
  ASSERT_TRUE(json::parse(line, reparsed, &error)) << error;
  EXPECT_EQ(reparsed.find("schema")->as_string(), kRunReportSchema);
}

TEST(ThreadPool, CountsDispatchesAndJobs) {
  par::set_num_threads(4);
  par::ThreadPool &pool = par::ThreadPool::global();
  pool.reset_stats();

  std::atomic<int> ran{0};
  pool.run_on_all([&](int) { ran.fetch_add(1, std::memory_order_relaxed); });
  pool.run_on_all([&](int) { ran.fetch_add(1, std::memory_order_relaxed); });

  const par::ThreadPoolStats stats = pool.stats();
  EXPECT_EQ(stats.dispatches, 2u);
  EXPECT_EQ(stats.jobs_executed, static_cast<std::uint64_t>(ran.load()));
  EXPECT_EQ(stats.jobs_executed, 2u * static_cast<std::uint64_t>(pool.num_threads()));
  // Every non-caller job was picked up either within the spin window or
  // after a condvar park.
  EXPECT_GE(stats.spin_wakeups + stats.sleep_wakeups,
            2u * static_cast<std::uint64_t>(pool.num_threads() - 1));

  pool.reset_stats();
  EXPECT_EQ(pool.stats().dispatches, 0u);
  EXPECT_EQ(pool.stats().jobs_executed, 0u);
}

} // namespace
} // namespace terapart
