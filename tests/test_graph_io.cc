// Tests for graph file I/O: TPG binary round trips, streamed packet reading,
// and METIS text interop.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "generators/generators.h"
#include "graph/graph_builder.h"
#include "graph/graph_io.h"
#include "graph/validation.h"

namespace terapart {
namespace {

namespace fs = std::filesystem;

class TempDir {
public:
  TempDir() {
    _path = fs::temp_directory_path() /
            ("terapart_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter()++));
    fs::create_directories(_path);
  }
  ~TempDir() { fs::remove_all(_path); }
  [[nodiscard]] fs::path file(const std::string &name) const { return _path / name; }

private:
  static int &counter() {
    static int value = 0;
    return value;
  }
  fs::path _path;
};

void expect_same_graph(const CsrGraph &a, const CsrGraph &b) {
  ASSERT_EQ(a.n(), b.n());
  ASSERT_EQ(a.m(), b.m());
  EXPECT_EQ(a.total_edge_weight(), b.total_edge_weight());
  EXPECT_EQ(a.total_node_weight(), b.total_node_weight());
  for (NodeID u = 0; u < a.n(); ++u) {
    ASSERT_EQ(a.degree(u), b.degree(u)) << "vertex " << u;
    ASSERT_EQ(a.node_weight(u), b.node_weight(u));
    std::vector<std::pair<NodeID, EdgeWeight>> na;
    std::vector<std::pair<NodeID, EdgeWeight>> nb;
    a.for_each_neighbor(u, [&](const NodeID v, const EdgeWeight w) { na.emplace_back(v, w); });
    b.for_each_neighbor(u, [&](const NodeID v, const EdgeWeight w) { nb.emplace_back(v, w); });
    ASSERT_EQ(na, nb) << "vertex " << u;
  }
}

TEST(TpgIo, RoundTripUnweighted) {
  TempDir dir;
  const CsrGraph graph = gen::gnm(500, 2000, 1);
  io::write_tpg(dir.file("g.tpg"), graph);
  const CsrGraph loaded = io::read_tpg(dir.file("g.tpg"));
  expect_same_graph(graph, loaded);
}

TEST(TpgIo, RoundTripWeighted) {
  TempDir dir;
  const CsrGraph graph = gen::with_random_edge_weights(gen::grid2d(20, 20), 100, 3);
  io::write_tpg(dir.file("g.tpg"), graph);
  const CsrGraph loaded = io::read_tpg(dir.file("g.tpg"));
  EXPECT_TRUE(loaded.is_edge_weighted());
  expect_same_graph(graph, loaded);
}

TEST(TpgIo, HeaderOnly) {
  TempDir dir;
  const CsrGraph graph = gen::grid2d(10, 10);
  io::write_tpg(dir.file("g.tpg"), graph);
  const io::TpgHeader header = io::read_tpg_header(dir.file("g.tpg"));
  EXPECT_EQ(header.n, graph.n());
  EXPECT_EQ(header.m, graph.m());
  EXPECT_EQ(header.has_edge_weights, 0u);
}

TEST(TpgIo, RejectsGarbage) {
  TempDir dir;
  {
    std::FILE *f = std::fopen(dir.file("junk").c_str(), "wb");
    std::fputs("this is not a graph file at all, padding padding padding", f);
    std::fclose(f);
  }
  EXPECT_THROW((void)io::read_tpg(dir.file("junk")), std::runtime_error);
}

class TpgStreamTest : public ::testing::TestWithParam<std::size_t> {};

INSTANTIATE_TEST_SUITE_P(BufferSizes, TpgStreamTest,
                         ::testing::Values(1, 16, 257, 4096, 1 << 20));

TEST_P(TpgStreamTest, PacketsReassembleTheGraph) {
  TempDir dir;
  const CsrGraph graph = gen::with_random_edge_weights(gen::rhg(400, 10, 3.0, 7), 50, 9);
  io::write_tpg(dir.file("g.tpg"), graph);

  io::TpgStreamReader reader(dir.file("g.tpg"), GetParam());
  io::TpgStreamReader::Packet packet;
  NodeID next = 0;
  EdgeID edges_seen = 0;
  while (reader.next_packet(packet)) {
    ASSERT_EQ(packet.first_node, next);
    std::size_t cursor = 0;
    for (NodeID i = 0; i < packet.num_nodes; ++i) {
      const NodeID u = packet.first_node + i;
      ASSERT_EQ(packet.degrees[i], graph.degree(u));
      EdgeID e = graph.raw_nodes()[u];
      for (NodeID d = 0; d < packet.degrees[i]; ++d, ++e) {
        ASSERT_EQ(packet.targets[cursor], graph.raw_edges()[e]);
        ASSERT_EQ(packet.edge_weights[cursor], graph.edge_weight(e));
        ++cursor;
      }
    }
    edges_seen += cursor;
    next += packet.num_nodes;
  }
  EXPECT_EQ(next, graph.n());
  EXPECT_EQ(edges_seen, graph.m());
}

TEST_P(TpgStreamTest, RewindRestarts) {
  TempDir dir;
  const CsrGraph graph = gen::grid2d(15, 15);
  io::write_tpg(dir.file("g.tpg"), graph);
  io::TpgStreamReader reader(dir.file("g.tpg"), GetParam());
  io::TpgStreamReader::Packet packet;
  NodeID count_a = 0;
  while (reader.next_packet(packet)) {
    count_a += packet.num_nodes;
  }
  reader.rewind();
  NodeID count_b = 0;
  while (reader.next_packet(packet)) {
    count_b += packet.num_nodes;
  }
  EXPECT_EQ(count_a, graph.n());
  EXPECT_EQ(count_b, graph.n());
}

TEST(MetisIo, RoundTripUnweighted) {
  TempDir dir;
  const CsrGraph graph = gen::gnm(200, 600, 5);
  io::write_metis(dir.file("g.metis"), graph);
  const CsrGraph loaded = io::read_metis(dir.file("g.metis"));
  expect_same_graph(graph, loaded);
}

TEST(MetisIo, RoundTripFullyWeighted) {
  TempDir dir;
  GraphBuilder builder(4);
  builder.add_edge(0, 1, 3);
  builder.add_edge(1, 2, 2);
  builder.add_edge(2, 3, 9);
  builder.set_node_weights({1, 2, 3, 4});
  const CsrGraph graph = builder.build(false, true);
  io::write_metis(dir.file("g.metis"), graph);
  const CsrGraph loaded = io::read_metis(dir.file("g.metis"));
  EXPECT_TRUE(loaded.is_edge_weighted());
  EXPECT_TRUE(loaded.is_node_weighted());
  expect_same_graph(graph, loaded);
}

TEST(MetisIo, GraphWithIsolatedVertices) {
  TempDir dir;
  const CsrGraph graph = graph_from_adjacency_unweighted({{}, {2}, {1}, {}});
  io::write_metis(dir.file("g.metis"), graph);
  const CsrGraph loaded = io::read_metis(dir.file("g.metis"));
  expect_same_graph(graph, loaded);
}

// ------------------------------------------------- METIS parser edge cases ---

void write_text(const fs::path &path, const std::string &content) {
  std::ofstream out(path);
  out << content;
}

TEST(MetisParser, CommentsBlankLinesAndTrailingWhitespaceAccepted) {
  TempDir dir;
  // Comments before the header and between vertex lines, trailing spaces and
  // tabs after the last neighbor, CR line endings, and a blank line standing
  // in for an isolated vertex.
  write_text(dir.file("g.metis"), "% a triangle plus an isolated vertex\n"
                                  "  % indented comment\n"
                                  "4 3\n"
                                  "2 3  \n"
                                  "% mid-file comment\n"
                                  "1 3\t\r\n"
                                  "1 2 \t \n"
                                  "\n");
  auto result = io::try_read_metis(dir.file("g.metis"));
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  const CsrGraph &graph = result.value();
  EXPECT_EQ(graph.n(), 4u);
  EXPECT_EQ(graph.m(), 6u);
  EXPECT_EQ(graph.degree(3), 0u);
}

TEST(MetisParser, ReportsLineAndColumnForBadToken) {
  TempDir dir;
  write_text(dir.file("g.metis"), "3 2\n"
                                  "2\n"
                                  "1 x\n"
                                  "\n");
  auto result = io::try_read_metis(dir.file("g.metis"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kParseError);
  EXPECT_EQ(result.error().kind(), ErrorKind::kFormat);
  EXPECT_EQ(result.error().line, 3u);
  EXPECT_EQ(result.error().column, 3u);
  // The rendered error pinpoints path:line:column.
  EXPECT_NE(result.error().to_string().find(":3:3"), std::string::npos);
}

TEST(MetisParser, RejectsDigitsGluedToLetters) {
  TempDir dir;
  write_text(dir.file("g.metis"), "2 1\n12x\n1\n");
  auto result = io::try_read_metis(dir.file("g.metis"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kParseError);
  EXPECT_EQ(result.error().line, 2u);
  EXPECT_EQ(result.error().column, 3u); // the 'x'
}

TEST(MetisParser, RejectsNeighborOutOfRange) {
  TempDir dir;
  write_text(dir.file("g.metis"), "2 1\n3\n1\n");
  auto result = io::try_read_metis(dir.file("g.metis"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kParseError);
  EXPECT_EQ(result.error().line, 2u);
  EXPECT_EQ(result.error().column, 1u);
  EXPECT_NE(result.error().message.find("out of range"), std::string::npos);
}

TEST(MetisParser, RejectsBadFormatCodes) {
  TempDir dir;
  write_text(dir.file("g.metis"), "2 1 2\n2\n1\n");
  auto bad_digit = io::try_read_metis(dir.file("g.metis"));
  ASSERT_FALSE(bad_digit.ok());
  EXPECT_EQ(bad_digit.error().code, ErrorCode::kParseError);
  EXPECT_EQ(bad_digit.error().line, 1u);
  EXPECT_EQ(bad_digit.error().column, 5u);

  write_text(dir.file("g.metis"), "2 1 100\n2\n1\n");
  auto vertex_sizes = io::try_read_metis(dir.file("g.metis"));
  ASSERT_FALSE(vertex_sizes.ok());
  EXPECT_NE(vertex_sizes.error().message.find("vertex sizes"), std::string::npos);
}

TEST(MetisParser, RejectsMultipleVertexWeights) {
  TempDir dir;
  write_text(dir.file("g.metis"), "2 1 10 2\n5 2\n7 1\n");
  auto result = io::try_read_metis(dir.file("g.metis"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kParseError);
  EXPECT_NE(result.error().message.find("ncon=2"), std::string::npos);
}

TEST(MetisParser, RejectsMissingEdgeWeight) {
  TempDir dir;
  write_text(dir.file("g.metis"), "2 1 1\n2\n1 4\n");
  auto result = io::try_read_metis(dir.file("g.metis"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kParseError);
  EXPECT_EQ(result.error().line, 2u);
  EXPECT_NE(result.error().message.find("edge weight"), std::string::npos);
}

TEST(MetisParser, RejectsEdgeCountMismatch) {
  TempDir dir;
  write_text(dir.file("g.metis"), "3 5\n2\n1\n\n");
  auto result = io::try_read_metis(dir.file("g.metis"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kParseError);
  EXPECT_EQ(result.error().line, 1u); // reported against the lying header
  EXPECT_NE(result.error().message.find("declares 5"), std::string::npos);
}

TEST(MetisParser, RejectsCommentOnlyFile) {
  TempDir dir;
  write_text(dir.file("g.metis"), "% nothing\n% here\n");
  auto result = io::try_read_metis(dir.file("g.metis"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kParseError);
  EXPECT_NE(result.error().message.find("missing METIS header"), std::string::npos);
}

TEST(MetisParser, RejectsTruncatedVertexList) {
  TempDir dir;
  write_text(dir.file("g.metis"), "5 4\n2\n1\n");
  auto result = io::try_read_metis(dir.file("g.metis"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kParseError);
  EXPECT_NE(result.error().message.find("expected 5 vertex lines, found 2"), std::string::npos);
}

// ---------------------------------------------------- TPG typed error paths ---

TEST(TpgTypedErrors, BadMagic) {
  TempDir dir;
  write_text(dir.file("junk.tpg"), std::string(64, 'A'));
  auto result = io::try_read_tpg(dir.file("junk.tpg"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kBadMagic);
  EXPECT_EQ(result.error().kind(), ErrorKind::kFormat);
}

TEST(TpgTypedErrors, MissingFile) {
  auto result = io::try_read_tpg("/nonexistent/terapart/graph.tpg");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kOpenFailed);
  EXPECT_EQ(result.error().kind(), ErrorKind::kIo);
  EXPECT_EQ(result.error().sys_errno, ENOENT);
}

TEST(TpgTypedErrors, HeaderInconsistentWithFileSize) {
  TempDir dir;
  const CsrGraph graph = gen::grid2d(8, 8);
  io::write_tpg(dir.file("g.tpg"), graph);
  const auto original_size = fs::file_size(dir.file("g.tpg"));

  // Truncated: fewer bytes than the header promises.
  fs::resize_file(dir.file("g.tpg"), original_size - 8);
  auto truncated = io::try_read_tpg(dir.file("g.tpg"));
  ASSERT_FALSE(truncated.ok());
  EXPECT_EQ(truncated.error().code, ErrorCode::kCorruptHeader);

  // Padded: extra trailing bytes are an error too (exact size match).
  fs::resize_file(dir.file("g.tpg"), original_size + 8);
  auto padded = io::try_read_tpg(dir.file("g.tpg"));
  ASSERT_FALSE(padded.ok());
  EXPECT_EQ(padded.error().code, ErrorCode::kCorruptHeader);
}

TEST(TpgTypedErrors, CorruptOffsetArray) {
  TempDir dir;
  const CsrGraph graph = gen::grid2d(8, 8);
  io::write_tpg(dir.file("g.tpg"), graph);
  {
    // Overwrite nodes[0] (must be 0) right after the 40-byte header; the file
    // size is unchanged so only structural validation can catch this.
    std::FILE *f = std::fopen(dir.file("g.tpg").c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, sizeof(io::TpgHeader), SEEK_SET), 0);
    const EdgeID poison = 1;
    ASSERT_EQ(std::fwrite(&poison, sizeof(poison), 1, f), 1u);
    std::fclose(f);
  }
  auto result = io::try_read_tpg(dir.file("g.tpg"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kCorruptData);
  EXPECT_NE(result.error().message.find("does not start at 0"), std::string::npos);
}

} // namespace
} // namespace terapart
