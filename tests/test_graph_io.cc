// Tests for graph file I/O: TPG binary round trips, streamed packet reading,
// and METIS text interop.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>

#include "generators/generators.h"
#include "graph/graph_builder.h"
#include "graph/graph_io.h"
#include "graph/validation.h"

namespace terapart {
namespace {

namespace fs = std::filesystem;

class TempDir {
public:
  TempDir() {
    _path = fs::temp_directory_path() /
            ("terapart_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter()++));
    fs::create_directories(_path);
  }
  ~TempDir() { fs::remove_all(_path); }
  [[nodiscard]] fs::path file(const std::string &name) const { return _path / name; }

private:
  static int &counter() {
    static int value = 0;
    return value;
  }
  fs::path _path;
};

void expect_same_graph(const CsrGraph &a, const CsrGraph &b) {
  ASSERT_EQ(a.n(), b.n());
  ASSERT_EQ(a.m(), b.m());
  EXPECT_EQ(a.total_edge_weight(), b.total_edge_weight());
  EXPECT_EQ(a.total_node_weight(), b.total_node_weight());
  for (NodeID u = 0; u < a.n(); ++u) {
    ASSERT_EQ(a.degree(u), b.degree(u)) << "vertex " << u;
    ASSERT_EQ(a.node_weight(u), b.node_weight(u));
    std::vector<std::pair<NodeID, EdgeWeight>> na;
    std::vector<std::pair<NodeID, EdgeWeight>> nb;
    a.for_each_neighbor(u, [&](const NodeID v, const EdgeWeight w) { na.emplace_back(v, w); });
    b.for_each_neighbor(u, [&](const NodeID v, const EdgeWeight w) { nb.emplace_back(v, w); });
    ASSERT_EQ(na, nb) << "vertex " << u;
  }
}

TEST(TpgIo, RoundTripUnweighted) {
  TempDir dir;
  const CsrGraph graph = gen::gnm(500, 2000, 1);
  io::write_tpg(dir.file("g.tpg"), graph);
  const CsrGraph loaded = io::read_tpg(dir.file("g.tpg"));
  expect_same_graph(graph, loaded);
}

TEST(TpgIo, RoundTripWeighted) {
  TempDir dir;
  const CsrGraph graph = gen::with_random_edge_weights(gen::grid2d(20, 20), 100, 3);
  io::write_tpg(dir.file("g.tpg"), graph);
  const CsrGraph loaded = io::read_tpg(dir.file("g.tpg"));
  EXPECT_TRUE(loaded.is_edge_weighted());
  expect_same_graph(graph, loaded);
}

TEST(TpgIo, HeaderOnly) {
  TempDir dir;
  const CsrGraph graph = gen::grid2d(10, 10);
  io::write_tpg(dir.file("g.tpg"), graph);
  const io::TpgHeader header = io::read_tpg_header(dir.file("g.tpg"));
  EXPECT_EQ(header.n, graph.n());
  EXPECT_EQ(header.m, graph.m());
  EXPECT_EQ(header.has_edge_weights, 0u);
}

TEST(TpgIo, RejectsGarbage) {
  TempDir dir;
  {
    std::FILE *f = std::fopen(dir.file("junk").c_str(), "wb");
    std::fputs("this is not a graph file at all, padding padding padding", f);
    std::fclose(f);
  }
  EXPECT_THROW((void)io::read_tpg(dir.file("junk")), std::runtime_error);
}

class TpgStreamTest : public ::testing::TestWithParam<std::size_t> {};

INSTANTIATE_TEST_SUITE_P(BufferSizes, TpgStreamTest,
                         ::testing::Values(1, 16, 257, 4096, 1 << 20));

TEST_P(TpgStreamTest, PacketsReassembleTheGraph) {
  TempDir dir;
  const CsrGraph graph = gen::with_random_edge_weights(gen::rhg(400, 10, 3.0, 7), 50, 9);
  io::write_tpg(dir.file("g.tpg"), graph);

  io::TpgStreamReader reader(dir.file("g.tpg"), GetParam());
  io::TpgStreamReader::Packet packet;
  NodeID next = 0;
  EdgeID edges_seen = 0;
  while (reader.next_packet(packet)) {
    ASSERT_EQ(packet.first_node, next);
    std::size_t cursor = 0;
    for (NodeID i = 0; i < packet.num_nodes; ++i) {
      const NodeID u = packet.first_node + i;
      ASSERT_EQ(packet.degrees[i], graph.degree(u));
      EdgeID e = graph.raw_nodes()[u];
      for (NodeID d = 0; d < packet.degrees[i]; ++d, ++e) {
        ASSERT_EQ(packet.targets[cursor], graph.raw_edges()[e]);
        ASSERT_EQ(packet.edge_weights[cursor], graph.edge_weight(e));
        ++cursor;
      }
    }
    edges_seen += cursor;
    next += packet.num_nodes;
  }
  EXPECT_EQ(next, graph.n());
  EXPECT_EQ(edges_seen, graph.m());
}

TEST_P(TpgStreamTest, RewindRestarts) {
  TempDir dir;
  const CsrGraph graph = gen::grid2d(15, 15);
  io::write_tpg(dir.file("g.tpg"), graph);
  io::TpgStreamReader reader(dir.file("g.tpg"), GetParam());
  io::TpgStreamReader::Packet packet;
  NodeID count_a = 0;
  while (reader.next_packet(packet)) {
    count_a += packet.num_nodes;
  }
  reader.rewind();
  NodeID count_b = 0;
  while (reader.next_packet(packet)) {
    count_b += packet.num_nodes;
  }
  EXPECT_EQ(count_a, graph.n());
  EXPECT_EQ(count_b, graph.n());
}

TEST(MetisIo, RoundTripUnweighted) {
  TempDir dir;
  const CsrGraph graph = gen::gnm(200, 600, 5);
  io::write_metis(dir.file("g.metis"), graph);
  const CsrGraph loaded = io::read_metis(dir.file("g.metis"));
  expect_same_graph(graph, loaded);
}

TEST(MetisIo, RoundTripFullyWeighted) {
  TempDir dir;
  GraphBuilder builder(4);
  builder.add_edge(0, 1, 3);
  builder.add_edge(1, 2, 2);
  builder.add_edge(2, 3, 9);
  builder.set_node_weights({1, 2, 3, 4});
  const CsrGraph graph = builder.build(false, true);
  io::write_metis(dir.file("g.metis"), graph);
  const CsrGraph loaded = io::read_metis(dir.file("g.metis"));
  EXPECT_TRUE(loaded.is_edge_weighted());
  EXPECT_TRUE(loaded.is_node_weighted());
  expect_same_graph(graph, loaded);
}

TEST(MetisIo, GraphWithIsolatedVertices) {
  TempDir dir;
  const CsrGraph graph = graph_from_adjacency_unweighted({{}, {2}, {1}, {}});
  io::write_metis(dir.file("g.metis"), graph);
  const CsrGraph loaded = io::read_metis(dir.file("g.metis"));
  expect_same_graph(graph, loaded);
}

} // namespace
} // namespace terapart
