// Tests for the partition service (src/service/): the consolidated
// config/error API, NDJSON request parsing, concurrent jobs sharing one
// compressed graph + one retained hierarchy, bounded-queue and
// memory-budget shedding as first-class outcomes, session-cache LRU
// eviction, cooperative cancellation, and per-job run reports.
#include <gtest/gtest.h>

#include <condition_variable>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/fault_injection.h"
#include "common/json.h"
#include "common/memory_tracker.h"
#include "compression/parallel_compressor.h"
#include "generators/generators.h"
#include "partition/validation.h"
#include "terapart/service.h"

namespace terapart::service {
namespace {

constexpr const char *kSmallSpec = "rgg2d:n=6000,deg=8";
constexpr const char *kSmallKey = "gen:rgg2d:n=6000,deg=8";

[[nodiscard]] ServiceConfig config_or_die(ServiceConfigBuilder builder) {
  auto built = builder.build();
  EXPECT_TRUE(built.ok()) << (built.ok() ? "" : built.error().to_string());
  return std::move(built).value();
}

/// The tests only vary graph / k / seed; the helper keeps every submit site
/// fully initialized (everything else keeps the JobRequest defaults).
JobRequest request(std::string graph, const BlockID k, const std::uint64_t seed = 1) {
  JobRequest out;
  out.graph = std::move(graph);
  out.k = k;
  out.seed = seed;
  return out;
}

/// Blocks the worker inside the job's first progress event until release():
/// the deterministic way to hold a job "running" while the test fills the
/// queue behind it.
class ProgressGate {
public:
  [[nodiscard]] ProgressCallback callback() {
    return [this](const ProgressEvent & /*event*/) {
      std::unique_lock lock(_mutex);
      _entered = true;
      _cv.notify_all();
      _cv.wait(lock, [this] { return _released; });
    };
  }

  void wait_entered() {
    std::unique_lock lock(_mutex);
    _cv.wait(lock, [this] { return _entered; });
  }

  void release() {
    {
      std::lock_guard lock(_mutex);
      _released = true;
    }
    _cv.notify_all();
  }

private:
  std::mutex _mutex;
  std::condition_variable _cv;
  bool _entered = false;
  bool _released = false;
};

TEST(ServiceConfig, BuilderRejectsInvalidSettingsWithConfigErrors) {
  {
    auto result = ServiceConfigBuilder().workers(0).build();
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().field, "workers");
    EXPECT_EQ(error_kind(result.error().code), ErrorKind::kConfig);
    EXPECT_NE(result.error().to_string().find("invalid configuration: workers:"),
              std::string::npos);
  }
  {
    // Mixing inter-job and intra-job parallelism is the one combination the
    // pool's single-dispatcher design cannot serve.
    auto result = ServiceConfigBuilder().workers(2).threads_per_job(4).build();
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().field, "threads_per_job");
  }
  {
    auto result = ServiceConfigBuilder().queue_capacity(0).build();
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().field, "queue_capacity");
  }
  {
    auto result = ServiceConfigBuilder().degraded_watermark(1.5).build();
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().field, "degraded_watermark");
  }
  {
    auto result = ServiceConfigBuilder().default_preset("turbo").build();
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().field, "default_preset");
  }
  EXPECT_TRUE(ServiceConfigBuilder().workers(1).threads_per_job(4).build().ok());
  EXPECT_TRUE(ServiceConfigBuilder().workers(8).build().ok());
}

TEST(ServiceRequest, ParsesNdjsonAndRejectsUnknownKeys) {
  auto parsed = parse_job_request_line(
      R"({"graph": "gen:rgg2d:n=1000,deg=8", "k": 8, "epsilon": 0.1, "seed": 7, )"
      R"("preset": "fast", "id": "alpha"})");
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_EQ(parsed.value().graph, "gen:rgg2d:n=1000,deg=8");
  EXPECT_EQ(parsed.value().k, 8u);
  EXPECT_DOUBLE_EQ(parsed.value().epsilon, 0.1);
  EXPECT_EQ(parsed.value().seed, 7u);
  EXPECT_EQ(parsed.value().preset, "fast");
  EXPECT_EQ(parsed.value().id, "alpha");

  // Round-trip through the serializer.
  auto round = parse_job_request(job_request_to_json(parsed.value()));
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(round.value().graph, parsed.value().graph);
  EXPECT_EQ(round.value().seed, parsed.value().seed);

  {
    auto bad = parse_job_request_line(R"({"graph": "g.tpg", "blocks": 4})");
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.error().field, "blocks");
    EXPECT_EQ(error_kind(bad.error().code), ErrorKind::kConfig);
  }
  {
    auto bad = parse_job_request_line(R"({"k": 4})");
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.error().field, "graph");
  }
  {
    auto bad = parse_job_request_line("not json at all");
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(error_kind(bad.error().code), ErrorKind::kConfig);
  }
}

TEST(Service, SubmitValidatesThroughTheSameContextSurface) {
  PartitionService service(config_or_die(ServiceConfigBuilder().workers(1)));
  {
    auto handle = service.submit(request(kSmallKey, 1));
    ASSERT_FALSE(handle.ok());
    EXPECT_EQ(handle.error().field, "k");
  }
  {
    JobRequest request;
    request.graph = kSmallKey;
    request.preset = "turbo";
    auto handle = service.submit(std::move(request));
    ASSERT_FALSE(handle.ok());
    EXPECT_EQ(handle.error().field, "preset");
  }
  {
    auto handle = service.submit(JobRequest{});
    ASSERT_FALSE(handle.ok());
    EXPECT_EQ(handle.error().field, "graph");
  }
}

// The acceptance scenario: >= 8 concurrent jobs with mixed (k, epsilon,
// seed) against one shared compressed graph — exactly one graph load,
// exactly one hierarchy build, everyone else serves the retained artifact,
// and every job emits a valid NDJSON run report.
TEST(Service, ConcurrentMixedJobsShareOneGraphAndOneHierarchy) {
  PartitionService service(
      config_or_die(ServiceConfigBuilder().workers(4).queue_capacity(64)));

  const BlockID ks[] = {4, 8, 16, 32, 4, 8, 16, 32, 64};
  std::vector<PartitionService::JobHandle> handles;
  for (std::size_t i = 0; i < std::size(ks); ++i) {
    JobRequest request;
    request.graph = kSmallKey;
    request.k = ks[i];
    request.epsilon = (i % 2 == 0) ? 0.03 : 0.1;
    request.seed = i + 1;
    auto handle = service.submit(std::move(request));
    ASSERT_TRUE(handle.ok()) << handle.error().to_string();
    handles.push_back(std::move(handle).value());
  }

  const CsrGraph reference = gen::by_spec(kSmallSpec, GraphStore::kGeneratorSeed);
  std::size_t builds_observed = 0;
  for (std::size_t i = 0; i < handles.size(); ++i) {
    const JobResult &result = handles[i].wait();
    ASSERT_TRUE(result.state == JobState::kDone || result.state == JobState::kDegraded)
        << "job " << i << " ended " << job_state_name(result.state);
    expect_valid_partition(reference, result.partition.partition, ks[i],
                           result.partition.cut);
    if (!result.hierarchy_reused) {
      ++builds_observed;
    }

    // Every job's report is one parseable NDJSON line with the versioned
    // schema and the job lifecycle section.
    const std::string line = service.job_report(result).to_ndjson_line();
    EXPECT_EQ(line.back(), '\n');
    json::Value doc;
    std::string parse_error;
    ASSERT_TRUE(json::parse(line, doc, &parse_error)) << parse_error;
    ASSERT_NE(doc.find("schema"), nullptr);
    EXPECT_EQ(doc.find("schema")->as_string(), "terapart.run_report/v1");
    const json::Value *job = doc.find("job");
    ASSERT_NE(job, nullptr);
    EXPECT_EQ(job->find("id")->as_string(), handles[i].id());
    EXPECT_NE(job->find("state")->as_string(), "failed");
  }

  // One job built the hierarchy; the other eight served it read-only.
  EXPECT_EQ(builds_observed, 1u);
  EXPECT_EQ(service.metrics().counter("cache.hierarchy_builds"), 1u);
  const json::Value stats = service.stats_json();
  EXPECT_EQ(stats.find("store")->find("loads")->as_uint64(), 1u);
  EXPECT_EQ(stats.find("store")->find("graphs_resident")->as_uint64(), 1u);
  EXPECT_EQ(stats.find("session_cache")->find("misses")->as_uint64(), 1u);
  EXPECT_EQ(stats.find("session_cache")->find("hits")->as_uint64(), 8u);
}

TEST(Service, FullQueueShedsAtSubmitAsAFirstClassOutcome) {
  PartitionService service(
      config_or_die(ServiceConfigBuilder().workers(1).queue_capacity(1)));

  ProgressGate gate;
  auto running = service.submit(request(kSmallKey, 4), gate.callback());
  ASSERT_TRUE(running.ok());
  gate.wait_entered(); // the worker is now pinned inside job 1

  auto queued = service.submit(request(kSmallKey, 8));
  ASSERT_TRUE(queued.ok());
  auto shed = service.submit(request(kSmallKey, 16));
  ASSERT_TRUE(shed.ok());

  // The shed handle is terminal immediately, with its reason — no error.
  const JobResult &shed_result = shed.value().wait();
  EXPECT_EQ(shed_result.state, JobState::kShed);
  EXPECT_EQ(shed_result.shed_reason, "queue_full");
  EXPECT_FALSE(shed_result.has_partition());

  const std::string line = service.job_report(shed_result).to_ndjson_line();
  json::Value doc;
  ASSERT_TRUE(json::parse(line, doc, nullptr));
  EXPECT_EQ(doc.find("job")->find("state")->as_string(), "shed");
  EXPECT_EQ(doc.find("job")->find("shed_reason")->as_string(), "queue_full");

  gate.release();
  EXPECT_TRUE(running.value().wait().state == JobState::kDone);
  EXPECT_TRUE(queued.value().wait().state == JobState::kDone);
  EXPECT_EQ(service.metrics().counter("service.jobs_shed_queue_full"), 1u);
}

TEST(Service, CancelBeforeRunningDropsTheJobWithoutRunningIt) {
  PartitionService service(
      config_or_die(ServiceConfigBuilder().workers(1).queue_capacity(4)));

  ProgressGate gate;
  auto running = service.submit(request(kSmallKey, 4), gate.callback());
  ASSERT_TRUE(running.ok());
  gate.wait_entered();

  auto doomed = service.submit(request(kSmallKey, 8));
  ASSERT_TRUE(doomed.ok());
  doomed.value().cancel();
  gate.release();

  const JobResult &result = doomed.value().wait();
  EXPECT_EQ(result.state, JobState::kCancelled);
  EXPECT_FALSE(result.has_partition());
  EXPECT_EQ(result.run_ms, 0.0);
  EXPECT_EQ(running.value().wait().state, JobState::kDone);
}

TEST(Service, MemoryBudgetShedsAndRecordsTheReasonInTheRunReport) {
  // Size the budget around the small graph: the primer job (and its cache
  // hits) fit, the much larger graph's hierarchy build cannot.
  const std::uint64_t before = MemoryTracker::global().current();
  std::uint64_t small_bytes = 0;
  {
    const CsrGraph small = gen::by_spec(kSmallSpec, GraphStore::kGeneratorSeed);
    auto outcome = try_compress_graph_parallel(small);
    ASSERT_TRUE(outcome.ok());
    small_bytes = outcome.value().graph.memory_bytes();
  }
  const std::uint64_t budget = before + 8 * small_bytes;

  // One worker: FIFO order guarantees the warm jobs are admitted against
  // the small-graph footprint before the big graph ever loads (admission
  // reads the *global* tracker, so a concurrent big load would count
  // against them).
  PartitionService service(config_or_die(
      ServiceConfigBuilder().workers(1).queue_capacity(16).memory_budget_bytes(budget)));

  auto primer = service.submit(request(kSmallKey, 8));
  ASSERT_TRUE(primer.ok());
  ASSERT_EQ(primer.value().wait().state, JobState::kDone);

  std::vector<PartitionService::JobHandle> warm;
  for (int i = 0; i < 8; ++i) {
    auto handle =
        service.submit(request(kSmallKey, 8, static_cast<std::uint64_t>(i + 2)));
    ASSERT_TRUE(handle.ok());
    warm.push_back(std::move(handle).value());
  }
  // ~30x the small graph: loading it alone blows the budget, so admission
  // sheds the job (after the load — the store keeps the graph resident).
  auto big = service.submit(request("gen:rgg2d:n=200000,deg=8", 8));
  ASSERT_TRUE(big.ok());

  for (auto &handle : warm) {
    EXPECT_EQ(handle.wait().state, JobState::kDone);
  }
  const JobResult &shed = big.value().wait();
  EXPECT_EQ(shed.state, JobState::kShed);
  EXPECT_EQ(shed.shed_reason, "memory_budget");
  EXPECT_EQ(shed.admission, Admission::kShed);

  const std::string line = service.job_report(shed).to_ndjson_line();
  json::Value doc;
  ASSERT_TRUE(json::parse(line, doc, nullptr));
  EXPECT_EQ(doc.find("job")->find("state")->as_string(), "shed");
  EXPECT_EQ(doc.find("job")->find("shed_reason")->as_string(), "memory_budget");
  EXPECT_GE(service.metrics().counter("service.jobs_shed_memory"), 1u);
}

TEST(Service, SessionCacheEvictsLeastRecentlyUsedUnderBudget) {
  // A 1-byte session budget forces every hierarchy build to evict all other
  // built sessions (the just-built entry is never evicted).
  PartitionService service(config_or_die(
      ServiceConfigBuilder().workers(1).queue_capacity(8).session_budget_bytes(1)));

  ASSERT_EQ(service.submit(request(kSmallKey, 4)).value().wait().state,
            JobState::kDone);
  ASSERT_EQ(
      service.submit(request("gen:grid2d:rows=80,cols=80", 4)).value().wait().state,
      JobState::kDone);

  const json::Value stats = service.stats_json();
  EXPECT_GE(stats.find("session_cache")->find("evictions")->as_uint64(), 1u);
  EXPECT_EQ(stats.find("session_cache")->find("entries")->as_uint64(), 1u);

  // The evicted session rebuilds on the next request for its graph.
  ASSERT_EQ(service.submit(request(kSmallKey, 8)).value().wait().state,
            JobState::kDone);
  EXPECT_EQ(service.metrics().counter("cache.hierarchy_builds"), 3u);
}

TEST(Service, UnreadableGraphFailsTheJobNotTheService) {
  PartitionService service(config_or_die(ServiceConfigBuilder().workers(1)));
  auto missing = service.submit(request("no_such_file.tpg", 4));
  ASSERT_TRUE(missing.ok());
  const JobResult &result = missing.value().wait();
  EXPECT_EQ(result.state, JobState::kFailed);
  EXPECT_FALSE(result.error.message.empty());

  const std::string line = service.job_report(result).to_ndjson_line();
  json::Value doc;
  ASSERT_TRUE(json::parse(line, doc, nullptr));
  EXPECT_EQ(doc.find("job")->find("state")->as_string(), "failed");
  ASSERT_NE(doc.find("job")->find("error"), nullptr);

  // The process stays healthy: the next job on a good graph succeeds.
  auto good = service.submit(request(kSmallKey, 4));
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value().wait().state, JobState::kDone);
}

TEST(Service, BatchAllocFaultMidRunIsRecordedAsADegradedJob) {
  if (!fault::kEnabled) {
    GTEST_SKIP() << "built without TP_FAULT_INJECTION";
  }
  PartitionService service(config_or_die(ServiceConfigBuilder().workers(1)));
  // "The allocator stays broken": every contraction batch allocation fails,
  // so the hierarchy build degrades to buffered contraction.
  fault::ScopedFault armed(fault::Point::kBatchAlloc,
                           fault::FaultSpec{.max_fires = 0});
  auto handle = service.submit(request("gen:rgg2d:n=4000,deg=8", 8));
  ASSERT_TRUE(handle.ok());
  const JobResult &result = handle.value().wait();
  EXPECT_EQ(result.state, JobState::kDegraded);
  EXPECT_TRUE(result.partition.degraded.contraction_buffered);
  EXPECT_TRUE(result.has_partition());

  const std::string line = service.job_report(result).to_ndjson_line();
  json::Value doc;
  ASSERT_TRUE(json::parse(line, doc, nullptr));
  EXPECT_EQ(doc.find("job")->find("state")->as_string(), "degraded");
  EXPECT_TRUE(doc.find("degraded_mode")->find("contraction_buffered")->as_bool());
}

} // namespace
} // namespace terapart::service
