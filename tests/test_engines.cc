// Tests for the engine seam of the stage-based multilevel pipeline: the
// registry and its defaults, Context -> engine resolution (including the
// legacy use_fm toggle), ContextBuilder validation of engine names, preset
// engine stacks, and custom-engine registration.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <utility>

#include "generators/generators.h"
#include "partition/engine_registry.h"
#include "partition/facade.h"
#include "partition/stages.h"

namespace terapart {
namespace {

TEST(EngineRegistry, DefaultsAreRegistered) {
  EngineRegistry &registry = EngineRegistry::global();
  EXPECT_TRUE(registry.has_coarsening("lp"));
  EXPECT_TRUE(registry.has_initial("bisection"));
  EXPECT_TRUE(registry.has_refinement("lp"));
  EXPECT_TRUE(registry.has_refinement("lp+fm"));
  EXPECT_FALSE(registry.has_coarsening("does-not-exist"));
}

TEST(EngineRegistry, NamesAreSortedAndComplete) {
  EngineRegistry &registry = EngineRegistry::global();
  const auto refinement = registry.refinement_names();
  ASSERT_GE(refinement.size(), 2u);
  EXPECT_TRUE(std::is_sorted(refinement.begin(), refinement.end()));
  EXPECT_NE(std::find(refinement.begin(), refinement.end(), "lp"), refinement.end());
  EXPECT_NE(std::find(refinement.begin(), refinement.end(), "lp+fm"), refinement.end());
}

TEST(EngineRegistry, MakeUnknownEngineThrowsWithAlternatives) {
  Context ctx = terapart_context(4, 1);
  ctx.coarsening_engine = "nope";
  try {
    (void)EngineRegistry::global().make_coarsening(ctx);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument &error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("nope"), std::string::npos);
    EXPECT_NE(message.find("lp"), std::string::npos);
  }
}

TEST(EngineResolution, LegacyUseFmUpgradesDefaultLp) {
  Context ctx = terapart_context(4, 1);
  EXPECT_EQ(resolved_refinement_engine(ctx), "lp");
  ctx.use_fm = true;
  EXPECT_EQ(resolved_refinement_engine(ctx), "lp+fm");
}

TEST(EngineResolution, ExplicitEngineNameWins) {
  // An explicitly selected non-default engine is not overridden by the
  // legacy bool.
  Context ctx = terapart_context(4, 1);
  ctx.refinement_engine = "lp+fm";
  ctx.use_fm = false;
  EXPECT_EQ(resolved_refinement_engine(ctx), "lp+fm");
}

TEST(EngineResolution, PresetsSelectRealStacks) {
  EXPECT_EQ(resolved_refinement_engine(context_for_preset(Preset::kFast, 4, 1)), "lp");
  EXPECT_EQ(resolved_refinement_engine(context_for_preset(Preset::kTeraPart, 4, 1)), "lp");
  EXPECT_EQ(resolved_refinement_engine(context_for_preset(Preset::kTeraPartFm, 4, 1)),
            "lp+fm");
  EXPECT_EQ(resolved_refinement_engine(context_for_preset(Preset::kStrong, 4, 1)), "lp+fm");

  const Context fast = context_for_preset(Preset::kFast, 4, 1);
  const Context strong = context_for_preset(Preset::kStrong, 4, 1);
  EXPECT_EQ(fast.name, "fast");
  EXPECT_EQ(strong.name, "strong");
  // The ladder trades rounds/repetitions for quality.
  EXPECT_LT(fast.initial.repetitions, strong.initial.repetitions);
  EXPECT_GT(strong.fm.rounds, context_for_preset(Preset::kTeraPartFm, 4, 1).fm.rounds - 2);
}

TEST(EngineResolution, PresetFromNameRoundTrips) {
  EXPECT_EQ(preset_from_name("fast"), Preset::kFast);
  EXPECT_EQ(preset_from_name("kaminpar"), Preset::kKaMinPar);
  EXPECT_EQ(preset_from_name("terapart"), Preset::kTeraPart);
  EXPECT_EQ(preset_from_name("terapart-fm"), Preset::kTeraPartFm);
  EXPECT_EQ(preset_from_name("strong"), Preset::kStrong);
  EXPECT_EQ(preset_from_name("medium-rare"), std::nullopt);
}

TEST(ContextBuilder, RejectsUnknownEngineNamesEagerly) {
  const auto result = ContextBuilder().k(4).refinement_engine("simulated-annealing").build();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().field, "refinement_engine");
  // The message lists the registered engines, so the fix is obvious.
  EXPECT_NE(result.error().message.find("simulated-annealing"), std::string::npos);
  EXPECT_NE(result.error().message.find("\"lp\""), std::string::npos);
  EXPECT_NE(result.error().message.find("\"lp+fm\""), std::string::npos);

  const auto coarsening = ContextBuilder().k(4).coarsening_engine("matching").build();
  ASSERT_FALSE(coarsening.ok());
  EXPECT_EQ(coarsening.error().field, "coarsening_engine");

  const auto initial = ContextBuilder().k(4).initial_engine("spectral").build();
  ASSERT_FALSE(initial.ok());
  EXPECT_EQ(initial.error().field, "initial_engine");
}

TEST(ContextBuilder, UseFmAndEngineNameStayInSync) {
  const auto fm_on = ContextBuilder().k(4).use_fm(true).build();
  ASSERT_TRUE(fm_on.ok());
  EXPECT_EQ(fm_on.value().refinement_engine, "lp+fm");
  EXPECT_TRUE(fm_on.value().use_fm);

  const auto fm_off = ContextBuilder(Preset::kTeraPartFm).k(4).use_fm(false).build();
  ASSERT_TRUE(fm_off.ok());
  EXPECT_EQ(fm_off.value().refinement_engine, "lp");
  EXPECT_FALSE(fm_off.value().use_fm);

  const auto by_name = ContextBuilder().k(4).refinement_engine("lp+fm").build();
  ASSERT_TRUE(by_name.ok());
  EXPECT_TRUE(by_name.value().use_fm);
}

TEST(EngineStack, ResultRecordsTheResolvedEngineNames) {
  const CsrGraph graph = gen::rgg2d(3000, 10, 7);

  const PartitionResult lp = Partitioner(terapart_context(4, 1)).partition(graph);
  EXPECT_EQ(lp.engines.coarsening, "lp");
  EXPECT_EQ(lp.engines.initial, "bisection");
  EXPECT_EQ(lp.engines.refinement, "lp");
  EXPECT_FALSE(lp.hierarchy_reused);

  const PartitionResult fm = Partitioner(terapart_fm_context(4, 1)).partition(graph);
  EXPECT_EQ(fm.engines.refinement, "lp+fm");
}

TEST(EngineStack, FastAndStrongPresetsPartitionCorrectly) {
  const CsrGraph graph = gen::rgg2d(4000, 12, 11);
  for (const Preset preset : {Preset::kFast, Preset::kStrong}) {
    const PartitionResult result = Partitioner(context_for_preset(preset, 8, 3)).partition(graph);
    EXPECT_EQ(result.partition.size(), graph.n());
    EXPECT_TRUE(result.balanced);
    EXPECT_GT(result.cut, 0);
  }
}

/// A test double that delegates to the default engine but reports its own
/// name — proves third-party engines plug in through the registry without
/// touching the driver.
class RenamedLpEngine final : public CoarseningEngine {
public:
  [[nodiscard]] std::string_view name() const override { return "custom-lp"; }

  [[nodiscard]] MultilevelHierarchy coarsen(const CsrGraph &graph,
                                            const CoarseningConfig &config, const BlockID k,
                                            const std::uint64_t seed) const override {
    return _inner.coarsen(graph, config, k, seed);
  }
  [[nodiscard]] MultilevelHierarchy coarsen(const CompressedGraph &graph,
                                            const CoarseningConfig &config, const BlockID k,
                                            const std::uint64_t seed) const override {
    return _inner.coarsen(graph, config, k, seed);
  }

private:
  LpCoarseningEngine _inner;
};

TEST(EngineStack, CustomEngineRegistersAndRuns) {
  EngineRegistry::global().register_coarsening(
      "custom-lp", [](const Context &) { return std::make_unique<RenamedLpEngine>(); });

  const auto built = ContextBuilder().k(4).coarsening_engine("custom-lp").build();
  ASSERT_TRUE(built.ok());

  const CsrGraph graph = gen::rgg2d(3000, 10, 5);
  const PartitionResult custom = Partitioner(built.value()).partition(graph);
  EXPECT_EQ(custom.engines.coarsening, "custom-lp");
  EXPECT_EQ(custom.partition.size(), graph.n());

  // Same algorithm under a different name: the partition is bit-identical
  // to the default engine's.
  Context default_ctx = built.value();
  default_ctx.coarsening_engine = "lp";
  const PartitionResult standard = Partitioner(default_ctx).partition(graph);
  EXPECT_EQ(custom.partition, standard.partition);
  EXPECT_EQ(custom.cut, standard.cut);
}

} // namespace
} // namespace terapart
