// End-to-end tests of the multilevel partitioner: every preset on every
// graph class, uncompressed and compressed inputs, many k values.
#include <gtest/gtest.h>

#include "compression/encoder.h"
#include "generators/generators.h"
#include "parallel/thread_pool.h"
#include "partition/metrics.h"
#include "partition/partitioner.h"
#include "partition/reporting.h"
#include "partition/validation.h"
#include "partition/facade.h"

namespace terapart {
namespace {

void expect_valid_result(const CsrGraph &graph, const Context &ctx,
                         const PartitionResult &result) {
  ASSERT_EQ(result.partition.size(), graph.n());
  for (const BlockID b : result.partition) {
    ASSERT_LT(b, ctx.k);
  }
  const PartitionValidationResult validation =
      validate_partition(graph, result.partition, ctx.k, result.cut);
  EXPECT_TRUE(validation.ok) << validation.message;
  EXPECT_EQ(result.cut, metrics::edge_cut(graph, result.partition));
  const auto weights = metrics::block_weights(graph, result.partition, ctx.k);
  EXPECT_EQ(result.balanced,
            metrics::is_balanced(weights, graph.total_node_weight(), ctx.k, ctx.epsilon));
  EXPECT_TRUE(result.balanced) << "imbalance " << result.imbalance;
}

struct EndToEndCase {
  std::string name;
  std::string spec;
  BlockID k;
  int threads;
};

class PartitionerEndToEnd : public ::testing::TestWithParam<EndToEndCase> {
protected:
  void SetUp() override { par::set_num_threads(GetParam().threads); }
  void TearDown() override { par::set_num_threads(1); }
};

std::vector<EndToEndCase> end_to_end_cases() {
  std::vector<EndToEndCase> cases;
  const std::pair<const char *, const char *> specs[] = {
      {"grid", "grid2d:rows=50,cols=50"},     {"rgg", "rgg2d:n=3000,deg=12"},
      {"rhg", "rhg:n=3000,deg=14,gamma=2.8"}, {"web", "weblike:n=2500,deg=16"},
      {"gnm", "gnm:n=1500,m=9000"},
  };
  for (const auto &[name, spec] : specs) {
    for (const BlockID k : {2, 8, 37}) {
      for (const int threads : {1, 4}) {
        cases.push_back({std::string(name) + "_k" + std::to_string(k) + "_p" +
                             std::to_string(threads),
                         spec, k, threads});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Cases, PartitionerEndToEnd, ::testing::ValuesIn(end_to_end_cases()),
                         [](const auto &info) { return info.param.name; });

TEST_P(PartitionerEndToEnd, KaminparPresetIsValid) {
  const CsrGraph graph = gen::by_spec(GetParam().spec, 3);
  const Context ctx = kaminpar_context(GetParam().k, 7);
  expect_valid_result(graph, ctx, Partitioner(ctx).partition(graph));
}

TEST_P(PartitionerEndToEnd, TerapartPresetIsValid) {
  const CsrGraph graph = gen::by_spec(GetParam().spec, 3);
  const Context ctx = terapart_context(GetParam().k, 7);
  expect_valid_result(graph, ctx, Partitioner(ctx).partition(graph));
}

TEST_P(PartitionerEndToEnd, TerapartOnCompressedInputIsValid) {
  const CsrGraph graph = gen::by_spec(GetParam().spec, 3);
  const CompressedGraph compressed = compress_graph(graph);
  const Context ctx = terapart_context(GetParam().k, 7);
  const PartitionResult result = Partitioner(ctx).partition(compressed);
  ASSERT_EQ(result.partition.size(), graph.n());
  EXPECT_EQ(result.cut, metrics::edge_cut(graph, result.partition));
  EXPECT_TRUE(result.balanced);
}

TEST_P(PartitionerEndToEnd, TerapartFmPresetIsValidAndAtLeastAsGoodOnAverage) {
  const CsrGraph graph = gen::by_spec(GetParam().spec, 3);
  const Context lp_ctx = terapart_context(GetParam().k, 7);
  const Context fm_ctx = terapart_fm_context(GetParam().k, 7);
  const PartitionResult lp = Partitioner(lp_ctx).partition(graph);
  const PartitionResult fm = Partitioner(fm_ctx).partition(graph);
  expect_valid_result(graph, fm_ctx, fm);
  // FM may not win on every instance/seed, but must never be far worse.
  EXPECT_LE(fm.cut, lp.cut + lp.cut / 4 + 50);
}

TEST(Partitioner, QualityLandsInASaneRangeOnStructuredGraphs) {
  // rgg2d with k=8: the paper's world has cuts around ~1% of edges; accept a
  // generous band to keep the test robust.
  const CsrGraph graph = gen::rgg2d(10'000, 12, 5);
  const PartitionResult result = Partitioner(terapart_context(8, 1)).partition(graph);
  const double fraction =
      static_cast<double>(result.cut) / static_cast<double>(graph.m() / 2);
  EXPECT_LT(fraction, 0.10);
  EXPECT_GT(result.cut, 0);
}

TEST(Partitioner, KaminparAndTerapartHaveComparableQuality) {
  // Figure 4 (right): the optimization ladder does not change cut quality.
  double ratio_sum = 0;
  int instances = 0;
  for (const auto &spec : {"rgg2d:n=4000,deg=12", "rhg:n=4000,deg=12,gamma=3.0",
                           "grid2d:rows=60,cols=60"}) {
    const CsrGraph graph = gen::by_spec(spec, 11);
    for (const std::uint64_t seed : {1, 2, 3}) {
      const auto kaminpar = Partitioner(kaminpar_context(8, seed)).partition(graph);
      const auto terapart = Partitioner(terapart_context(8, seed)).partition(graph);
      ratio_sum += static_cast<double>(terapart.cut) /
                   std::max<EdgeWeight>(1, kaminpar.cut);
      ++instances;
    }
  }
  const double mean_ratio = ratio_sum / instances;
  EXPECT_GT(mean_ratio, 0.8);
  EXPECT_LT(mean_ratio, 1.25);
}

TEST(Partitioner, DeterministicSingleThreaded) {
  par::set_num_threads(1);
  const CsrGraph graph = gen::rgg2d(2000, 10, 13);
  const PartitionResult a = Partitioner(terapart_context(8, 42)).partition(graph);
  const PartitionResult b = Partitioner(terapart_context(8, 42)).partition(graph);
  EXPECT_EQ(a.partition, b.partition);
  EXPECT_EQ(a.cut, b.cut);
}

TEST(Partitioner, TrivialCases) {
  const CsrGraph graph = gen::grid2d(6, 6);
  // k = 1.
  const PartitionResult one = Partitioner(terapart_context(1, 1)).partition(graph);
  EXPECT_EQ(one.cut, 0);
  EXPECT_TRUE(one.balanced);
  // Empty graph.
  const CsrGraph empty;
  const PartitionResult none = Partitioner(terapart_context(4, 1)).partition(empty);
  EXPECT_TRUE(none.partition.empty());
}

TEST(Partitioner, LargeKOnSmallGraph) {
  const CsrGraph graph = gen::rgg2d(1200, 10, 17);
  Context ctx = terapart_context(100, 5);
  const PartitionResult result = Partitioner(ctx).partition(graph);
  ASSERT_EQ(result.partition.size(), graph.n());
  EXPECT_TRUE(result.balanced);
}

TEST(Partitioner, WeightedGraphsStayBalancedByWeight) {
  const CsrGraph graph =
      gen::with_random_edge_weights(gen::rhg(2000, 12, 3.0, 3), 50, 4);
  Context ctx = terapart_context(8, 9);
  const PartitionResult result = Partitioner(ctx).partition(graph);
  expect_valid_result(graph, ctx, result);
}

TEST(Partitioner, ReportsTimersAndLevels) {
  const CsrGraph graph = gen::rgg2d(5000, 12, 21);
  const PartitionResult result = Partitioner(terapart_context(4, 3)).partition(graph);
  EXPECT_GT(result.num_levels, 0);
  EXPECT_GT(result.timers.total("coarsening"), 0.0);
  EXPECT_GT(result.timers.total("initial_partitioning"), 0.0);
  EXPECT_GT(result.timers.total("refinement"), 0.0);
}

TEST(Partitioner, PhaseTreeCoversEveryLevelAndRound) {
  const CsrGraph graph = gen::rgg2d(5000, 12, 21);
  const Context ctx = terapart_fm_context(4, 3);
  const PartitionResult result = Partitioner(ctx).partition(graph);
  ASSERT_GT(result.num_levels, 0);

  // Top-level phases mirror the PhaseTimer entries.
  const PhaseNode &root = result.phases.root();
  const PhaseNode *coarsening = root.child("coarsening");
  const PhaseNode *initial = root.child("initial_partitioning");
  const PhaseNode *refinement = root.child("refinement");
  ASSERT_NE(coarsening, nullptr);
  ASSERT_NE(initial, nullptr);
  ASSERT_NE(refinement, nullptr);
  EXPECT_GT(result.phases.total_s("coarsening"), 0.0);

  // Every coarsening level: coarsening/level_i with lp_clustering (with
  // per-round children) and contraction below it.
  for (int level = 1; level <= result.num_levels; ++level) {
    const PhaseNode *level_node = coarsening->child("level_" + std::to_string(level));
    ASSERT_NE(level_node, nullptr) << "missing coarsening level " << level;
    const PhaseNode *lp = level_node->child("lp_clustering");
    ASSERT_NE(lp, nullptr);
    ASSERT_NE(lp->child("round_0"), nullptr);
    ASSERT_NE(level_node->child("contraction"), nullptr);
  }

  // Every refinement level: level_0 (finest) .. level_L (coarsest), each with
  // per-round LP refinement and (for the FM preset) FM below it.
  for (int level = 0; level <= result.num_levels; ++level) {
    const PhaseNode *level_node = refinement->child("level_" + std::to_string(level));
    ASSERT_NE(level_node, nullptr) << "missing refinement level " << level;
    const PhaseNode *lp = level_node->child("lp_refinement");
    ASSERT_NE(lp, nullptr);
    ASSERT_NE(lp->child("round_0"), nullptr);
    ASSERT_NE(level_node->child("fm_refinement"), nullptr);
    EXPECT_GT(level_node->wall_s, 0.0);
  }
}

TEST(Partitioner, FillRunReportProducesParseableDocument) {
  const CsrGraph graph = gen::rgg2d(3000, 10, 5);
  const Context ctx = terapart_context(4, 2);
  const PartitionResult result = Partitioner(ctx).partition(graph);

  RunReport report("test_partitioner");
  fill_run_report(report, graph, "gen:rgg2d", ctx, result);

  json::Value parsed;
  std::string error;
  ASSERT_TRUE(json::parse(report.to_json(), parsed, &error)) << error;
  EXPECT_EQ(parsed.find("schema")->as_string(), kRunReportSchema);
  EXPECT_EQ(parsed.find("graph")->find("n")->as_uint64(), graph.n());
  EXPECT_EQ(parsed.find("config")->find("k")->as_uint64(), 4u);
  EXPECT_EQ(parsed.find("quality")->find("cut")->as_int64(), result.cut);
  EXPECT_EQ(parsed.find("levels")->size(), result.levels.size());
  ASSERT_NE(parsed.find("phases"), nullptr);
  ASSERT_NE(parsed.find("thread_pool"), nullptr);
  // Metrics wired from the leaf modules must show up in the global registry.
  EXPECT_GT(MetricsRegistry::global().counter("coarsening.lp.moves"), 0u);
  EXPECT_GT(MetricsRegistry::global().counter("refinement.lp.moves"), 0u);
}

} // namespace
} // namespace terapart
