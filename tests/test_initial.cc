// Tests for initial partitioning: greedy graph growing, 2-way FM, and the
// recursive-bisection k-way portfolio.
#include <gtest/gtest.h>

#include <array>

#include "common/math.h"
#include "generators/generators.h"
#include "graph/graph_builder.h"
#include "initial/bipartitioner.h"
#include "initial/fm2way.h"
#include "initial/initial_partitioner.h"
#include "partition/metrics.h"

namespace terapart {
namespace {

TEST(GreedyGraphGrowing, HitsTheTargetWeight) {
  const CsrGraph graph = gen::grid2d(20, 20);
  Random rng(1);
  const Bipartition result = greedy_graph_growing(graph, 200, rng);
  EXPECT_GE(result.block0_weight, 200);
  EXPECT_LE(result.block0_weight, 200 + graph.max_node_weight());
  for (const BlockID b : result.partition) {
    ASSERT_LE(b, 1u);
  }
}

TEST(GreedyGraphGrowing, GrowsAConnectedRegionOnAGrid) {
  // On a grid, greedy growing yields a far better cut than a random split.
  const CsrGraph graph = gen::grid2d(24, 24);
  Random rng(3);
  const Bipartition grown = greedy_graph_growing(graph, graph.n() / 2, rng);
  const Bipartition random = random_bipartition(graph, graph.n() / 2, rng);
  EXPECT_LT(metrics::edge_cut(graph, grown.partition),
            metrics::edge_cut(graph, random.partition) / 2);
}

TEST(GreedyGraphGrowing, HandlesDisconnectedGraphs) {
  // Two disjoint triangles; target weight 3 = one triangle.
  const CsrGraph graph =
      graph_from_adjacency_unweighted({{1, 2}, {0, 2}, {0, 1}, {4, 5}, {3, 5}, {3, 4}});
  Random rng(5);
  const Bipartition result = greedy_graph_growing(graph, 3, rng);
  EXPECT_EQ(result.block0_weight, 3);
  EXPECT_EQ(metrics::edge_cut(graph, result.partition), 0);
}

TEST(RandomBipartition, RespectsTarget) {
  const CsrGraph graph = gen::gnm(500, 2000, 2);
  Random rng(7);
  const Bipartition result = random_bipartition(graph, 123, rng);
  EXPECT_GE(result.block0_weight, 123);
  EXPECT_LE(result.block0_weight, 124);
}

TEST(Fm2Way, NeverWorsensTheCut) {
  Random rng(11);
  for (const auto &spec : {"grid2d:rows=16,cols=16", "rgg2d:n=400,deg=10",
                           "rhg:n=400,deg=10,gamma=3.0"}) {
    const CsrGraph graph = gen::by_spec(spec, 13);
    Bipartition split = random_bipartition(graph, graph.total_node_weight() / 2, rng);
    const EdgeWeight before = metrics::edge_cut(graph, split.partition);
    const std::array<BlockWeight, 2> bounds = {
        static_cast<BlockWeight>(graph.total_node_weight()),
        static_cast<BlockWeight>(graph.total_node_weight())};
    const EdgeWeight improvement =
        fm2way_refine(graph, split.partition, bounds, Fm2WayConfig{}, rng);
    const EdgeWeight after = metrics::edge_cut(graph, split.partition);
    EXPECT_EQ(before - after, improvement) << spec;
    EXPECT_LE(after, before) << spec;
  }
}

TEST(Fm2Way, RespectsBlockWeightBounds) {
  const CsrGraph graph = gen::grid2d(16, 16);
  Random rng(17);
  Bipartition split = random_bipartition(graph, graph.n() / 2, rng);
  const BlockWeight bound = graph.total_node_weight() / 2 + 8;
  fm2way_refine(graph, split.partition, {bound, bound}, Fm2WayConfig{}, rng);
  BlockWeight weights[2] = {0, 0};
  for (NodeID u = 0; u < graph.n(); ++u) {
    weights[split.partition[u]] += graph.node_weight(u);
  }
  EXPECT_LE(weights[0], bound);
  EXPECT_LE(weights[1], bound);
}

TEST(Fm2Way, FixesAnObviouslyBadSplit) {
  // Interleaved columns on a grid: FM should drastically reduce the cut.
  const CsrGraph graph = gen::grid2d(12, 12);
  std::vector<BlockID> partition(graph.n());
  for (NodeID u = 0; u < graph.n(); ++u) {
    partition[u] = (u % 12) % 2;
  }
  const EdgeWeight before = metrics::edge_cut(graph, partition);
  Random rng(19);
  const BlockWeight bound = graph.total_node_weight() / 2 + 12;
  fm2way_refine(graph, partition, {bound, bound}, Fm2WayConfig{}, rng);
  const EdgeWeight after = metrics::edge_cut(graph, partition);
  EXPECT_LT(after, before / 2);
}

class InitialPartitionTest : public ::testing::TestWithParam<BlockID> {};

INSTANTIATE_TEST_SUITE_P(Ks, InitialPartitionTest, ::testing::Values(2, 3, 4, 5, 8, 13, 16));

TEST_P(InitialPartitionTest, ProducesBalancedKWayPartitions) {
  const BlockID k = GetParam();
  const double epsilon = 0.05;
  for (const auto &spec : {"grid2d:rows=24,cols=24", "rhg:n=800,deg=12,gamma=3.0"}) {
    const CsrGraph graph = gen::by_spec(spec, 23);
    InitialPartitioningConfig config;
    const auto partition = initial_partition(graph, k, epsilon, config, 3);
    ASSERT_EQ(partition.size(), graph.n());
    for (const BlockID b : partition) {
      ASSERT_LT(b, k);
    }
    const auto weights = metrics::block_weights(graph, partition, k);
    // The recursive scheme distributes epsilon across levels; allow slack of
    // one max node weight per level on these small graphs.
    const BlockWeight bound =
        metrics::max_block_weight(graph.total_node_weight(), k, epsilon) +
        static_cast<BlockWeight>(math::ceil_log2(static_cast<std::uint32_t>(k)) + 1) *
            graph.max_node_weight();
    for (BlockID b = 0; b < k; ++b) {
      ASSERT_LE(weights[b], bound) << spec << " block " << b;
    }
  }
}

TEST_P(InitialPartitionTest, BeatsARandomPartitionOnStructuredGraphs) {
  const BlockID k = GetParam();
  const CsrGraph graph = gen::grid2d(30, 30);
  InitialPartitioningConfig config;
  const auto partition = initial_partition(graph, k, 0.05, config, 3);

  std::vector<BlockID> random_partition(graph.n());
  Random rng(3);
  for (auto &b : random_partition) {
    b = static_cast<BlockID>(rng.next_bounded(k));
  }
  EXPECT_LT(metrics::edge_cut(graph, partition),
            metrics::edge_cut(graph, random_partition));
}

TEST(InitialPartition, KEqualsOne) {
  const CsrGraph graph = gen::grid2d(10, 10);
  InitialPartitioningConfig config;
  const auto partition = initial_partition(graph, 1, 0.03, config, 1);
  for (const BlockID b : partition) {
    ASSERT_EQ(b, 0u);
  }
}

TEST(InitialPartition, MoreBlocksThanVertices) {
  const CsrGraph graph = gen::grid2d(3, 3); // 9 vertices
  InitialPartitioningConfig config;
  const auto partition = initial_partition(graph, 16, 0.03, config, 1);
  for (const BlockID b : partition) {
    ASSERT_LT(b, 16u);
  }
}

} // namespace
} // namespace terapart
