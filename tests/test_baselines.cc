// Tests for the comparator baselines: MT-METIS proxy, XtraPuLP proxy,
// HeiStream proxy, and the semi-external partitioner. Beyond validity, these
// check the *qualitative relationships* the paper reports (single-level and
// streaming methods cut far more edges than multilevel ones).
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <map>

#include "baselines/heistream_like.h"
#include "baselines/metis_like.h"
#include "baselines/semi_external.h"
#include "baselines/xtrapulp_like.h"
#include "generators/generators.h"
#include "graph/graph_io.h"
#include "partition/metrics.h"
#include "partition/partitioner.h"
#include "partition/facade.h"

namespace terapart::baselines {
namespace {

namespace fs = std::filesystem;

void expect_valid_partition(const CsrGraph &graph, const std::vector<BlockID> &partition,
                            const BlockID k) {
  ASSERT_EQ(partition.size(), graph.n());
  for (const BlockID b : partition) {
    ASSERT_LT(b, k);
  }
}

TEST(HeavyEdgeMatching, ProducesPairsAndSingletons) {
  const CsrGraph graph = gen::rgg2d(500, 10, 3);
  const auto matching = heavy_edge_matching(graph, 7);
  std::map<ClusterID, int> sizes;
  for (const ClusterID c : matching) {
    ++sizes[c];
  }
  for (const auto &[cluster, size] : sizes) {
    ASSERT_LE(size, 2) << "matching produced a cluster of size " << size;
  }
  // On a geometric graph almost everything should be matched.
  int pairs = 0;
  for (const auto &[cluster, size] : sizes) {
    pairs += size == 2 ? 1 : 0;
  }
  EXPECT_GT(pairs, static_cast<int>(graph.n()) / 4);
}

TEST(MetisLike, PartitionsWithReasonableQuality) {
  const CsrGraph graph = gen::rgg2d(2000, 12, 5);
  const BlockID k = 8;
  const PartitionResult result = metis_like_partition(graph, k, 0.03, 3);
  expect_valid_partition(graph, result.partition, k);
  EXPECT_EQ(result.cut, metrics::edge_cut(graph, result.partition));
  EXPECT_GT(result.num_levels, 2); // pairwise matching -> deep hierarchy

  // Multilevel quality class: within a small factor of TeraPart.
  const PartitionResult terapart = Partitioner(terapart_context(k, 3)).partition(graph);
  EXPECT_LT(result.cut, 3 * terapart.cut + 100);
}

TEST(MetisLike, MayExceedTheStrictBalanceConstraint) {
  // The proxy refines under a soft bound (like MT-METIS, which violated
  // balance on 320/504 paper instances); its imbalance may exceed eps but
  // must stay under the soft slack.
  const CsrGraph graph = gen::rhg(2000, 14, 2.8, 7);
  MetisLikeConfig config;
  config.balance_slack = 0.10;
  const PartitionResult result = metis_like_partition(graph, 8, 0.03, 3, config);
  EXPECT_LE(result.imbalance, 0.12 + 1e-9);
}

TEST(XtraPulpLike, ValidButMuchWorseThanMultilevel) {
  const CsrGraph graph = gen::rgg2d(4000, 12, 9);
  const BlockID k = 8;
  const PartitionResult single_level = xtrapulp_like_partition(graph, k, 0.03, 3);
  expect_valid_partition(graph, single_level.partition, k);
  EXPECT_TRUE(single_level.balanced);

  const PartitionResult multilevel = Partitioner(terapart_context(k, 3)).partition(graph);
  // Table III's shape: single-level LP cuts several times more edges.
  EXPECT_GT(single_level.cut, 2 * multilevel.cut);
}

TEST(HeiStreamLike, OnePassIsValidAndBalanced) {
  const CsrGraph graph = gen::rhg(3000, 12, 3.0, 5);
  const BlockID k = 16;
  const PartitionResult result = heistream_like_partition(graph, k, 0.05, 3);
  expect_valid_partition(graph, result.partition, k);
  EXPECT_TRUE(result.balanced);
}

TEST(HeiStreamLike, WorseThanMultilevelOnGeneratedFamilies) {
  // Section VII: HeiStream cuts 3.1x (rgg2D) to 14.8x (rhg) more edges.
  for (const auto &spec : {"rgg2d:n=3000,deg=12", "rhg:n=3000,deg=12,gamma=3.0"}) {
    const CsrGraph graph = gen::by_spec(spec, 7);
    const BlockID k = 16;
    const PartitionResult streaming = heistream_like_partition(graph, k, 0.05, 3);
    Context ctx = terapart_context(k, 3);
    ctx.epsilon = 0.05;
    const PartitionResult multilevel = Partitioner(ctx).partition(graph);
    EXPECT_GT(streaming.cut, multilevel.cut) << spec;
  }
}

TEST(SemiExternal, PartitionsFromDiskWithBoundedMemory) {
  const fs::path path = fs::temp_directory_path() /
                        ("terapart_sem_" + std::to_string(::getpid()) + ".tpg");
  const CsrGraph graph = gen::rgg2d(2000, 10, 3);
  io::write_tpg(path, graph);

  const BlockID k = 16;
  const SemiExternalResult sem = semi_external_partition(path, k, 0.03, 5);
  expect_valid_partition(graph, sem.result.partition, k);
  EXPECT_EQ(sem.result.cut, metrics::edge_cut(graph, sem.result.partition));
  EXPECT_TRUE(sem.result.balanced);
  EXPECT_GT(sem.graph_passes, 5u); // multiple passes, by design

  // Table IV's shape: similar quality class to the in-memory method (the
  // paper's SEM is within ~1.4x of TeraPart).
  const PartitionResult in_memory = Partitioner(terapart_context(k, 5)).partition(graph);
  EXPECT_LT(sem.result.cut, 3 * in_memory.cut + 100);
  fs::remove(path);
}

TEST(SemiExternal, WorksOnWeightedGraphs) {
  const fs::path path = fs::temp_directory_path() /
                        ("terapart_semw_" + std::to_string(::getpid()) + ".tpg");
  const CsrGraph graph =
      gen::with_random_edge_weights(gen::grid2d(40, 40), 20, 9);
  io::write_tpg(path, graph);
  const SemiExternalResult sem = semi_external_partition(path, 4, 0.05, 1);
  expect_valid_partition(graph, sem.result.partition, 4);
  EXPECT_EQ(sem.result.cut, metrics::edge_cut(graph, sem.result.partition));
  fs::remove(path);
}

} // namespace
} // namespace terapart::baselines
