// Tests for PartitionSession, the retained-hierarchy "load once, serve
// many" handle: bit-identical parity with fresh Partitioner runs over a
// (k, epsilon, seed, threads) matrix, hierarchy-built-exactly-once
// telemetry, the cancelled-mid-uncoarsening partial-result path, and
// MemoryTracker accounting of the retained hierarchy.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "common/memory_tracker.h"
#include "compression/parallel_compressor.h"
#include "generators/generators.h"
#include "parallel/thread_pool.h"
#include "partition/facade.h"
#include "partition/metrics.h"

namespace terapart {
namespace {

Context base_context(const BlockID k = 16, const int threads = 0) {
  auto built = ContextBuilder(Preset::kTeraPart).k(k).seed(5).build();
  Context ctx = std::move(built).value();
  ctx.threads = threads;
  return ctx;
}

TEST(PartitionSession, ServesRequestsBitIdenticalToFreshRunsSingleThreaded) {
  const CsrGraph graph = gen::rgg2d(6000, 12, 17);

  // Single-threaded, the partitioner is a pure function of (graph, context)
  // — the strongest contract the library makes (parallel label propagation
  // is nondeterministic run-to-run, see Partitioner.DeterministicSingle-
  // Threaded). One matrix cell per (k x epsilon x seed): the session must
  // be indistinguishable from a fresh run under the equivalent pinned
  // context.
  PartitionSession session(graph, base_context(16, /*threads=*/1));
  for (const BlockID k : {4u, 16u}) {
    for (const double epsilon : {0.03, 0.1}) {
      for (const std::uint64_t seed : {1ULL, 9ULL}) {
        const PartitionResult served = session.partition(k, epsilon, seed);
        const Partitioner fresh(session.request_context(k, epsilon, seed));
        const PartitionResult reference = fresh.partition(graph);
        ASSERT_EQ(served.partition, reference.partition)
            << "k=" << k << " eps=" << epsilon << " seed=" << seed;
        EXPECT_EQ(served.cut, reference.cut);
        EXPECT_EQ(served.imbalance, reference.imbalance);
      }
    }
  }
}

TEST(PartitionSession, ServesValidPartitionsAcrossThreadCounts) {
  const CsrGraph graph = gen::rgg2d(6000, 12, 17);

  // Multithreaded runs are not bit-reproducible, so the contract weakens to
  // validity: every served request is a complete, balanced partition, and
  // reuse kicks in from the second request on.
  for (const int threads : {2, 4}) {
    PartitionSession session(graph, base_context(16, threads));
    bool first = true;
    for (const BlockID k : {4u, 8u, 16u}) {
      const PartitionResult served = session.partition(k, 0.03, 7);
      ASSERT_EQ(served.partition.size(), graph.n()) << "threads=" << threads << " k=" << k;
      EXPECT_TRUE(served.balanced);
      EXPECT_GT(served.cut, 0);
      EXPECT_EQ(served.hierarchy_reused, !first);
      first = false;
    }
  }
}

TEST(PartitionSession, WorksOnCompressedInputs) {
  const CsrGraph source = gen::rgg2d(5000, 12, 23);
  const CompressedGraph graph = compress_graph_parallel(source);

  PartitionSession session(graph, base_context(8, /*threads=*/1));
  const PartitionResult first = session.partition(8);
  const PartitionResult second = session.partition(4);
  EXPECT_TRUE(second.hierarchy_reused);

  const PartitionResult reference =
      Partitioner(session.request_context(4, 0.03, 5)).partition(graph);
  EXPECT_EQ(second.partition, reference.partition);
}

TEST(PartitionSession, BuildsTheHierarchyExactlyOnce) {
  const CsrGraph graph = gen::rgg2d(6000, 12, 31);
  PartitionSession session(graph, base_context(16));
  EXPECT_FALSE(session.hierarchy_built());

  // Three consecutive requests with different k: the coarsening phase may
  // appear only in the first result's telemetry.
  const PartitionResult first = session.partition(4);
  EXPECT_TRUE(session.hierarchy_built());
  EXPECT_FALSE(first.hierarchy_reused);
  EXPECT_NE(first.phases.root().child("coarsening"), nullptr);
  EXPECT_GT(first.timers.total("coarsening"), 0.0);

  const PartitionResult second = session.partition(8);
  const PartitionResult third = session.partition(16);
  for (const PartitionResult *result : {&second, &third}) {
    EXPECT_TRUE(result->hierarchy_reused);
    EXPECT_EQ(result->phases.root().child("coarsening"), nullptr);
    EXPECT_EQ(result->timers.total("coarsening"), 0.0);
    // The rest of the pipeline still reports normally.
    EXPECT_NE(result->phases.root().child("initial_partitioning"), nullptr);
    EXPECT_NE(result->phases.root().child("refinement"), nullptr);
  }

  // All three served against the same retained artifact.
  EXPECT_EQ(first.num_levels, second.num_levels);
  EXPECT_EQ(first.num_levels, third.num_levels);
}

TEST(PartitionSession, CancelledReusedRequestMatchesFreshCancelledRun) {
  // Large enough to produce a multi-level hierarchy (>= 2 coarse levels),
  // so cancellation can land between refinement passes.
  const CsrGraph graph = gen::rgg2d(40000, 12, 13);

  // Session base armed to cancel the SECOND request after its first
  // refinement milestone: request 1 builds the hierarchy and completes;
  // request 2 serves from the retained hierarchy and is cancelled
  // mid-uncoarsening, exercising the partial-result path (project the
  // current coarse partition down to the input graph). Single-threaded so
  // the partial result is bit-comparable to the fresh run.
  Context base = base_context(8, /*threads=*/1);
  const CancellationToken session_token = CancellationToken::create();
  const auto request_index = std::make_shared<int>(0);
  base.cancel = session_token;
  base.progress = [session_token, request_index](const ProgressEvent &event) {
    if (event.stage == "initial_partitioning") {
      ++*request_index; // one initial-partitioning milestone per request
    }
    if (*request_index == 2 && event.stage == "refinement") {
      session_token.request_stop();
    }
  };

  PartitionSession session(graph, base);
  const PartitionResult warm = session.partition(8);
  ASSERT_GT(warm.num_levels, 1) << "need a multi-level hierarchy to cancel mid-uncoarsening";
  EXPECT_FALSE(warm.cancelled);

  const PartitionResult cancelled = session.partition(8, 0.03, 77);
  EXPECT_TRUE(cancelled.cancelled);
  EXPECT_TRUE(cancelled.hierarchy_reused);
  EXPECT_EQ(cancelled.partition.size(), graph.n());

  // A fresh run under the equivalent pinned context, cancelled at its own
  // first refinement milestone, must produce the identical partial result.
  Context fresh_ctx = session.request_context(8, 0.03, 77);
  const CancellationToken fresh_token = CancellationToken::create();
  fresh_ctx.cancel = fresh_token;
  fresh_ctx.progress = [fresh_token](const ProgressEvent &event) {
    if (event.stage == "refinement") {
      fresh_token.request_stop();
    }
  };
  const PartitionResult fresh = Partitioner(fresh_ctx).partition(graph);
  EXPECT_TRUE(fresh.cancelled);
  EXPECT_EQ(cancelled.partition, fresh.partition);

  // A cancelled partial result is still a complete assignment: every vertex
  // placed, block weights summing to the total.
  const auto weights = metrics::block_weights(graph, cancelled.partition, 8);
  NodeWeight total = 0;
  for (const NodeWeight w : weights) {
    total += w;
  }
  EXPECT_EQ(total, graph.total_node_weight());
}

TEST(PartitionSession, AccountsRetainedHierarchyInMemoryTracker) {
  const CsrGraph graph = gen::rgg2d(6000, 12, 41);
  const std::uint64_t before = MemoryTracker::global().current("session/hierarchy");
  {
    PartitionSession session(graph, base_context(8));
    EXPECT_EQ(session.retained_bytes(), 0u);

    (void)session.partition(8);
    ASSERT_TRUE(session.hierarchy_built());
    EXPECT_GT(session.retained_bytes(), 0u);
    // The mappings' share is registered under "session/hierarchy"; the
    // coarse graphs self-account for their lifetime.
    EXPECT_EQ(MemoryTracker::global().current("session/hierarchy") - before,
              session.hierarchy()->mapping_bytes());
    EXPECT_GE(session.retained_bytes(), session.hierarchy()->mapping_bytes());
  }
  // Dropping the session releases the registration.
  EXPECT_EQ(MemoryTracker::global().current("session/hierarchy"), before);
}

TEST(PartitionSession, RequestContextPinsTheHierarchy) {
  const Context base = base_context(16);
  const CsrGraph graph = gen::rgg2d(3000, 10, 3);
  PartitionSession session(graph, base);

  const Context request = session.request_context(4, 0.1, 99);
  EXPECT_EQ(request.k, 4u);
  EXPECT_EQ(request.epsilon, 0.1);
  EXPECT_EQ(request.seed, 99u);
  // Coarsening stays pinned to the session base: granularity from the base
  // k, seed from the base seed, base coarsening epsilon untouched.
  EXPECT_EQ(request.hierarchy_k, base.k);
  ASSERT_TRUE(request.hierarchy_seed.has_value());
  EXPECT_EQ(*request.hierarchy_seed, base.seed);
  EXPECT_EQ(request.coarsening.epsilon, base.coarsening.epsilon);
}

} // namespace
} // namespace terapart
