// Tests for the compressed graph representation and the parallel single-pass
// compressor (Sections III-A and III-B).
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>

#include "compression/parallel_compressor.h"
#include "generators/generators.h"
#include "graph/graph_builder.h"
#include "graph/graph_io.h"
#include "parallel/thread_pool.h"

namespace terapart {
namespace {

namespace fs = std::filesystem;

/// Checks that decoding reproduces the exact (sorted) adjacency of the source.
void expect_decodes_to(const CsrGraph &source, const CompressedGraph &compressed) {
  ASSERT_EQ(compressed.n(), source.n());
  ASSERT_EQ(compressed.m(), source.m());
  EXPECT_EQ(compressed.total_edge_weight(), source.total_edge_weight());
  EXPECT_EQ(compressed.total_node_weight(), source.total_node_weight());
  EXPECT_EQ(compressed.max_degree(), source.max_degree());
  for (NodeID u = 0; u < source.n(); ++u) {
    ASSERT_EQ(compressed.degree(u), source.degree(u)) << "vertex " << u;
    ASSERT_EQ(compressed.first_edge(u), source.first_edge(u)) << "vertex " << u;
    const auto decoded = compressed.decode_sorted(u);
    std::vector<std::pair<NodeID, EdgeWeight>> expected;
    source.for_each_neighbor(
        u, [&](const NodeID v, const EdgeWeight w) { expected.emplace_back(v, w); });
    ASSERT_EQ(decoded, expected) << "vertex " << u;
  }
}

struct CompressionCase {
  std::string name;
  std::string spec;
  CompressionConfig config;
};

class CompressionRoundTrip : public ::testing::TestWithParam<CompressionCase> {};

std::vector<CompressionCase> roundtrip_cases() {
  std::vector<CompressionCase> cases;
  CompressionConfig defaults;
  CompressionConfig no_intervals;
  no_intervals.intervals = false;
  CompressionConfig tiny_chunks; // forces the chunked high-degree layout
  tiny_chunks.high_degree_threshold = 8;
  tiny_chunks.chunk_size = 3;
  CompressionConfig chunky_intervals;
  chunky_intervals.high_degree_threshold = 16;
  chunky_intervals.chunk_size = 5;
  chunky_intervals.intervals = true;

  for (const auto &spec :
       {"grid2d:rows=20,cols=20", "rgg2d:n=600,deg=10", "rhg:n=800,deg=12,gamma=2.8",
        "weblike:n=700,deg=16", "gnm:n=500,m=3000", "ba:n=400,attach=6", "kmer:n=600,deg=4",
        "rmat:scale=9,factor=6"}) {
    cases.push_back({std::string(spec) + "/default", spec, defaults});
    cases.push_back({std::string(spec) + "/no_intervals", spec, no_intervals});
    cases.push_back({std::string(spec) + "/tiny_chunks", spec, tiny_chunks});
    cases.push_back({std::string(spec) + "/chunky_intervals", spec, chunky_intervals});
  }
  return cases;
}

std::string case_name(const ::testing::TestParamInfo<CompressionCase> &info) {
  std::string name = info.param.name;
  for (char &c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) {
      c = '_';
    }
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllGenerators, CompressionRoundTrip,
                         ::testing::ValuesIn(roundtrip_cases()), case_name);

TEST_P(CompressionRoundTrip, UnweightedRoundTrip) {
  const CsrGraph graph = gen::by_spec(GetParam().spec, 12345);
  const CompressedGraph compressed = compress_graph(graph, GetParam().config);
  expect_decodes_to(graph, compressed);
}

TEST_P(CompressionRoundTrip, WeightedRoundTrip) {
  const CsrGraph graph =
      gen::with_random_edge_weights(gen::by_spec(GetParam().spec, 999), 1000, 4);
  const CompressedGraph compressed = compress_graph(graph, GetParam().config);
  EXPECT_TRUE(compressed.is_edge_weighted());
  expect_decodes_to(graph, compressed);
}

TEST_P(CompressionRoundTrip, ParallelCompressorIsByteIdentical) {
  const CsrGraph graph = gen::by_spec(GetParam().spec, 777);
  const CompressedGraph sequential = compress_graph(graph, GetParam().config);
  for (const int threads : {1, 4}) {
    par::set_num_threads(threads);
    ParallelCompressionConfig parallel_config;
    parallel_config.compression = GetParam().config;
    parallel_config.packet_edges = 64; // many packets -> exercises the commit protocol
    const CompressedGraph parallel = compress_graph_parallel(graph, parallel_config);
    ASSERT_EQ(parallel.used_bytes(), sequential.used_bytes());
    ASSERT_TRUE(std::equal(parallel.raw_bytes().begin(), parallel.raw_bytes().end(),
                           sequential.raw_bytes().begin()));
    ASSERT_TRUE(std::equal(parallel.raw_node_offsets().begin(),
                           parallel.raw_node_offsets().end(),
                           sequential.raw_node_offsets().begin()));
  }
  par::set_num_threads(1);
}

TEST(Compression, EmptyAndTinyGraphs) {
  const CsrGraph empty = graph_from_adjacency_unweighted({});
  const CompressedGraph compressed_empty = compress_graph(empty);
  EXPECT_EQ(compressed_empty.n(), 0u);

  const CsrGraph single = graph_from_adjacency_unweighted({{}});
  const CompressedGraph compressed_single = compress_graph(single);
  EXPECT_EQ(compressed_single.n(), 1u);
  EXPECT_EQ(compressed_single.degree(0), 0u);

  const CsrGraph pair = graph_from_adjacency_unweighted({{1}, {0}});
  expect_decodes_to(pair, compress_graph(pair));
}

TEST(Compression, StarGraphUsesChunkedLayout) {
  // One hub with degree 100 >> threshold 16: chunked encoding + parallel
  // iteration must agree with sequential.
  std::vector<std::vector<NodeID>> adjacency(101);
  for (NodeID leaf = 1; leaf <= 100; ++leaf) {
    adjacency[0].push_back(leaf);
    adjacency[leaf].push_back(0);
  }
  const CsrGraph graph = graph_from_adjacency_unweighted(adjacency);
  CompressionConfig config;
  config.high_degree_threshold = 16;
  config.chunk_size = 7;
  const CompressedGraph compressed = compress_graph(graph, config);
  expect_decodes_to(graph, compressed);

  par::set_num_threads(4);
  std::vector<std::atomic<std::uint8_t>> seen(101);
  compressed.for_each_neighbor_parallel(0, [&](const NodeID v, EdgeWeight) {
    seen[v].fetch_add(1);
  });
  for (NodeID leaf = 1; leaf <= 100; ++leaf) {
    ASSERT_EQ(seen[leaf].load(), 1u) << leaf;
  }
  par::set_num_threads(1);
}

TEST(Compression, IntervalEncodingBeatsGapOnlyOnConsecutiveIds) {
  // A graph full of consecutive runs (weblike navigation bars).
  const CsrGraph graph = gen::weblike(4000, 24, 5, 0.9, 128);
  CompressionConfig with_intervals;
  CompressionConfig gap_only;
  gap_only.intervals = false;
  const auto interval_bytes = compress_graph(graph, with_intervals).used_bytes();
  const auto gap_bytes = compress_graph(graph, gap_only).used_bytes();
  EXPECT_LT(interval_bytes, gap_bytes);
}

TEST(Compression, CompressionRatioOrderingByGraphClass) {
  // Web-like graphs compress far better than hash-random kmer graphs
  // (Figure 10's spread).
  const CsrGraph web = gen::weblike(3000, 20, 11, 0.85, 128);
  const CsrGraph kmer = gen::kmer_like(3000, 8, 11);
  const CompressedGraph cweb = compress_graph(web);
  const CompressedGraph ckmer = compress_graph(kmer);
  const double web_ratio = static_cast<double>(cweb.uncompressed_csr_bytes()) /
                           static_cast<double>(cweb.memory_bytes());
  const double kmer_ratio = static_cast<double>(ckmer.uncompressed_csr_bytes()) /
                            static_cast<double>(ckmer.memory_bytes());
  EXPECT_GT(web_ratio, kmer_ratio);
  EXPECT_GT(web_ratio, 2.0);
}

TEST(Compression, EdgeIdsAreContiguousPerNeighborhood) {
  const CsrGraph graph = gen::rgg2d(300, 8, 21);
  const CompressedGraph compressed = compress_graph(graph);
  for (NodeID u = 0; u < graph.n(); ++u) {
    std::vector<EdgeID> ids;
    compressed.for_each_neighbor_with_id(
        u, [&](const EdgeID e, NodeID, EdgeWeight) { ids.push_back(e); });
    ASSERT_EQ(ids.size(), graph.degree(u));
    std::sort(ids.begin(), ids.end());
    for (std::size_t i = 0; i < ids.size(); ++i) {
      ASSERT_EQ(ids[i], graph.first_edge(u) + i);
    }
  }
}

TEST(Compression, DecompressRoundTrip) {
  const CsrGraph graph = gen::with_random_edge_weights(gen::rhg(500, 10, 3.0, 2), 30, 8);
  const CompressedGraph compressed = compress_graph(graph);
  const CsrGraph restored = decompress_graph(compressed);
  ASSERT_EQ(restored.n(), graph.n());
  ASSERT_EQ(restored.m(), graph.m());
  for (NodeID u = 0; u < graph.n(); ++u) {
    std::vector<std::pair<NodeID, EdgeWeight>> a;
    std::vector<std::pair<NodeID, EdgeWeight>> b;
    graph.for_each_neighbor(u, [&](const NodeID v, const EdgeWeight w) { a.emplace_back(v, w); });
    restored.for_each_neighbor(
        u, [&](const NodeID v, const EdgeWeight w) { b.emplace_back(v, w); });
    ASSERT_EQ(a, b);
  }
}

TEST(Compression, SinglePassFromFileMatchesInMemory) {
  const fs::path path = fs::temp_directory_path() /
                        ("terapart_sp_" + std::to_string(::getpid()) + ".tpg");
  const CsrGraph graph = gen::weblike(2000, 18, 31);
  io::write_tpg(path, graph);

  for (const int threads : {1, 4}) {
    par::set_num_threads(threads);
    ParallelCompressionConfig config;
    config.packet_edges = 128;
    const CompressedGraph from_file = compress_tpg_single_pass(path, config);
    const CompressedGraph from_memory = compress_graph(graph, config.compression);
    ASSERT_EQ(from_file.used_bytes(), from_memory.used_bytes());
    ASSERT_TRUE(std::equal(from_file.raw_bytes().begin(), from_file.raw_bytes().end(),
                           from_memory.raw_bytes().begin()));
    EXPECT_EQ(from_file.total_edge_weight(), graph.total_edge_weight());
    EXPECT_EQ(from_file.max_degree(), graph.max_degree());
    expect_decodes_to(graph, from_file);
  }
  par::set_num_threads(1);
  fs::remove(path);
}

TEST(Compression, UpperBoundHolds) {
  for (const auto &spec : {"weblike:n=500,deg=20", "kmer:n=500,deg=6"}) {
    const CsrGraph graph = gen::by_spec(spec, 3);
    const CompressionConfig config;
    const CompressedGraph compressed = compress_graph(graph, config);
    EXPECT_LE(compressed.used_bytes(),
              compressed_size_upper_bound(graph.n(), graph.m(), false, config));
  }
}

} // namespace
} // namespace terapart
