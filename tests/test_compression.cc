// Tests for the compressed graph representation and the parallel single-pass
// compressor (Sections III-A and III-B).
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>

#include "compression/parallel_compressor.h"
#include "generators/generators.h"
#include "graph/graph_builder.h"
#include "graph/graph_io.h"
#include "parallel/thread_pool.h"

namespace terapart {
namespace {

namespace fs = std::filesystem;

/// Checks that decoding reproduces the exact (sorted) adjacency of the source.
void expect_decodes_to(const CsrGraph &source, const CompressedGraph &compressed) {
  ASSERT_EQ(compressed.n(), source.n());
  ASSERT_EQ(compressed.m(), source.m());
  EXPECT_EQ(compressed.total_edge_weight(), source.total_edge_weight());
  EXPECT_EQ(compressed.total_node_weight(), source.total_node_weight());
  EXPECT_EQ(compressed.max_degree(), source.max_degree());
  for (NodeID u = 0; u < source.n(); ++u) {
    ASSERT_EQ(compressed.degree(u), source.degree(u)) << "vertex " << u;
    ASSERT_EQ(compressed.first_edge(u), source.first_edge(u)) << "vertex " << u;
    const auto decoded = compressed.decode_sorted(u);
    std::vector<std::pair<NodeID, EdgeWeight>> expected;
    source.for_each_neighbor(
        u, [&](const NodeID v, const EdgeWeight w) { expected.emplace_back(v, w); });
    ASSERT_EQ(decoded, expected) << "vertex " << u;
  }
}

/// Collects a neighborhood through the block API as (target, weight) pairs,
/// expanding the `ws == nullptr` unit-weight convention.
template <typename Graph>
std::vector<std::pair<NodeID, EdgeWeight>> collect_blocks(const Graph &graph, const NodeID u) {
  std::vector<std::pair<NodeID, EdgeWeight>> result;
  graph.for_each_neighbor_block(
      u, [&](const NodeID *ids, const EdgeWeight *ws, const std::size_t count) {
        EXPECT_GT(count, 0u) << "empty blocks must not be emitted";
        for (std::size_t i = 0; i < count; ++i) {
          result.emplace_back(ids[i], ws == nullptr ? 1 : ws[i]);
        }
      });
  return result;
}

/// Collects every neighborhood delivered by the ranged block sweep over
/// [begin, end), checking that vertices arrive in ascending order, stay in
/// range, and that no empty block is emitted. A vertex may be delivered in
/// several consecutive calls (large or chunked neighborhoods).
template <typename Graph>
std::vector<std::vector<std::pair<NodeID, EdgeWeight>>>
collect_sweep(const Graph &graph, const NodeID begin, const NodeID end) {
  std::vector<std::vector<std::pair<NodeID, EdgeWeight>>> result(graph.n());
  NodeID prev = begin;
  graph.for_each_neighborhood_block(
      begin, end,
      [&](const NodeID u, const NodeID *ids, const EdgeWeight *ws, const std::size_t count) {
        EXPECT_GT(count, 0u) << "empty blocks must not be emitted";
        EXPECT_GE(u, prev) << "sweep must deliver vertices in ascending order";
        EXPECT_LT(u, end) << "sweep left its range";
        prev = u;
        for (std::size_t i = 0; i < count; ++i) {
          result[u].emplace_back(ids[i], ws == nullptr ? 1 : ws[i]);
        }
      });
  return result;
}

/// Checks that on each representation the block API emits exactly the
/// per-edge visitor sequence in the same order, and that the two
/// representations agree as sorted sequences (the compressed emission order —
/// intervals before residuals — may differ from CSR order).
void expect_block_parity(const CsrGraph &source, const CompressedGraph &compressed) {
  const auto sweep_compressed = collect_sweep(compressed, 0, compressed.n());
  const auto sweep_csr = collect_sweep(source, 0, source.n());
  for (NodeID u = 0; u < source.n(); ++u) {
    std::vector<std::pair<NodeID, EdgeWeight>> per_edge;
    compressed.for_each_neighbor(
        u, [&](const NodeID v, const EdgeWeight w) { per_edge.emplace_back(v, w); });
    ASSERT_EQ(collect_blocks(compressed, u), per_edge) << "vertex " << u;

    std::vector<std::pair<NodeID, EdgeWeight>> csr_blocks = collect_blocks(source, u);
    std::vector<std::pair<NodeID, EdgeWeight>> csr_per_edge;
    source.for_each_neighbor(
        u, [&](const NodeID v, const EdgeWeight w) { csr_per_edge.emplace_back(v, w); });
    ASSERT_EQ(csr_blocks, csr_per_edge) << "vertex " << u;

    ASSERT_EQ(sweep_compressed[u], per_edge) << "sweep vertex " << u;
    ASSERT_EQ(sweep_csr[u], csr_blocks) << "sweep vertex " << u;

    std::sort(per_edge.begin(), per_edge.end());
    std::sort(csr_blocks.begin(), csr_blocks.end());
    ASSERT_EQ(per_edge, csr_blocks) << "vertex " << u;
  }
}

struct CompressionCase {
  std::string name;
  std::string spec;
  CompressionConfig config;
};

class CompressionRoundTrip : public ::testing::TestWithParam<CompressionCase> {};

std::vector<CompressionCase> roundtrip_cases() {
  std::vector<CompressionCase> cases;
  CompressionConfig defaults;
  CompressionConfig no_intervals;
  no_intervals.intervals = false;
  CompressionConfig tiny_chunks; // forces the chunked high-degree layout
  tiny_chunks.high_degree_threshold = 8;
  tiny_chunks.chunk_size = 3;
  CompressionConfig chunky_intervals;
  chunky_intervals.high_degree_threshold = 16;
  chunky_intervals.chunk_size = 5;
  chunky_intervals.intervals = true;

  for (const auto &spec :
       {"grid2d:rows=20,cols=20", "rgg2d:n=600,deg=10", "rhg:n=800,deg=12,gamma=2.8",
        "weblike:n=700,deg=16", "gnm:n=500,m=3000", "ba:n=400,attach=6", "kmer:n=600,deg=4",
        "rmat:scale=9,factor=6"}) {
    cases.push_back({std::string(spec) + "/default", spec, defaults});
    cases.push_back({std::string(spec) + "/no_intervals", spec, no_intervals});
    cases.push_back({std::string(spec) + "/tiny_chunks", spec, tiny_chunks});
    cases.push_back({std::string(spec) + "/chunky_intervals", spec, chunky_intervals});
  }
  return cases;
}

std::string case_name(const ::testing::TestParamInfo<CompressionCase> &info) {
  std::string name = info.param.name;
  for (char &c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) {
      c = '_';
    }
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllGenerators, CompressionRoundTrip,
                         ::testing::ValuesIn(roundtrip_cases()), case_name);

TEST_P(CompressionRoundTrip, UnweightedRoundTrip) {
  const CsrGraph graph = gen::by_spec(GetParam().spec, 12345);
  const CompressedGraph compressed = compress_graph(graph, GetParam().config);
  expect_decodes_to(graph, compressed);
}

TEST_P(CompressionRoundTrip, WeightedRoundTrip) {
  const CsrGraph graph =
      gen::with_random_edge_weights(gen::by_spec(GetParam().spec, 999), 1000, 4);
  const CompressedGraph compressed = compress_graph(graph, GetParam().config);
  EXPECT_TRUE(compressed.is_edge_weighted());
  expect_decodes_to(graph, compressed);
}

TEST_P(CompressionRoundTrip, BlockApiMatchesPerEdgeUnweighted) {
  const CsrGraph graph = gen::by_spec(GetParam().spec, 4242);
  const CompressedGraph compressed = compress_graph(graph, GetParam().config);
  expect_block_parity(graph, compressed);
}

TEST_P(CompressionRoundTrip, BlockApiMatchesPerEdgeWeighted) {
  const CsrGraph graph =
      gen::with_random_edge_weights(gen::by_spec(GetParam().spec, 515), 1000, 4);
  const CompressedGraph compressed = compress_graph(graph, GetParam().config);
  expect_block_parity(graph, compressed);
}

TEST_P(CompressionRoundTrip, ParallelCompressorIsByteIdentical) {
  const CsrGraph graph = gen::by_spec(GetParam().spec, 777);
  const CompressedGraph sequential = compress_graph(graph, GetParam().config);
  for (const int threads : {1, 4}) {
    par::set_num_threads(threads);
    ParallelCompressionConfig parallel_config;
    parallel_config.compression = GetParam().config;
    parallel_config.packet_edges = 64; // many packets -> exercises the commit protocol
    const CompressedGraph parallel = compress_graph_parallel(graph, parallel_config);
    ASSERT_EQ(parallel.used_bytes(), sequential.used_bytes());
    ASSERT_TRUE(std::equal(parallel.raw_bytes().begin(), parallel.raw_bytes().end(),
                           sequential.raw_bytes().begin()));
    ASSERT_TRUE(std::equal(parallel.raw_node_offsets().begin(),
                           parallel.raw_node_offsets().end(),
                           sequential.raw_node_offsets().begin()));
  }
  par::set_num_threads(1);
}

TEST(Compression, EmptyAndTinyGraphs) {
  const CsrGraph empty = graph_from_adjacency_unweighted({});
  const CompressedGraph compressed_empty = compress_graph(empty);
  EXPECT_EQ(compressed_empty.n(), 0u);

  const CsrGraph single = graph_from_adjacency_unweighted({{}});
  const CompressedGraph compressed_single = compress_graph(single);
  EXPECT_EQ(compressed_single.n(), 1u);
  EXPECT_EQ(compressed_single.degree(0), 0u);

  const CsrGraph pair = graph_from_adjacency_unweighted({{1}, {0}});
  expect_decodes_to(pair, compress_graph(pair));
}

TEST(Compression, BlockApiOnEmptyNeighborhoods) {
  // Isolated vertices: the block callback must never fire, on either
  // representation.
  const CsrGraph graph = graph_from_adjacency_unweighted({{}, {2}, {1}, {}});
  const CompressedGraph compressed = compress_graph(graph);
  for (const NodeID u : {0u, 3u}) {
    graph.for_each_neighbor_block(u, [&](const NodeID *, const EdgeWeight *, std::size_t) {
      FAIL() << "block emitted for isolated vertex " << u;
    });
    compressed.for_each_neighbor_block(u, [&](const NodeID *, const EdgeWeight *, std::size_t) {
      FAIL() << "block emitted for isolated vertex " << u;
    });
    compressed.for_each_neighbor_parallel_block(
        u, [&](const NodeID *, const EdgeWeight *, std::size_t) {
          FAIL() << "parallel block emitted for isolated vertex " << u;
        });
  }
  expect_block_parity(graph, compressed);
}

TEST(Compression, IntervalRunOfLengthExactlyThree) {
  // min_interval_length defaults to 3: a run of exactly 3 is the shortest
  // neighborhood segment stored as an interval (its length is encoded as 0).
  // Both decode paths must reproduce it, with and without surrounding
  // residuals.
  std::vector<std::vector<NodeID>> adjacency(30);
  adjacency[0] = {10, 11, 12};            // exactly one interval, no residuals
  adjacency[1] = {5, 10, 11, 12, 20};     // interval between two residuals
  adjacency[2] = {10, 11, 12, 14, 15, 16}; // two back-to-back length-3 runs
  for (const NodeID u : {0u, 1u, 2u}) {
    for (const NodeID v : adjacency[u]) {
      adjacency[v].push_back(u);
    }
  }
  const CsrGraph graph = graph_from_adjacency_unweighted(adjacency);
  CompressionConfig config;
  ASSERT_EQ(config.min_interval_length, 3u);
  const CompressedGraph compressed = compress_graph(graph, config);
  expect_decodes_to(graph, compressed);
  expect_block_parity(graph, compressed);

  // A run of length 2 must stay in the residual encoding.
  const CsrGraph two_run = graph_from_adjacency_unweighted({{1, 2}, {0}, {0}});
  expect_block_parity(two_run, compress_graph(two_run, config));
}

TEST(Compression, BlockApiSplitsLargeNeighborhoodsAtBlockSize) {
  // A flat neighborhood larger than kDecodeBlockSize must arrive as multiple
  // full blocks plus a remainder, in order.
  const NodeID degree = static_cast<NodeID>(2 * kDecodeBlockSize + 17);
  std::vector<std::vector<NodeID>> adjacency(degree + 1);
  for (NodeID v = 1; v <= degree; ++v) {
    adjacency[0].push_back(v);
    adjacency[v].push_back(0);
  }
  const CsrGraph graph = graph_from_adjacency_unweighted(adjacency);
  CompressionConfig config;
  config.intervals = false; // force the pure gap+varint residual path
  config.high_degree_threshold = 100'000;
  const CompressedGraph compressed = compress_graph(graph, config);

  std::vector<std::size_t> block_sizes;
  std::vector<NodeID> targets;
  compressed.for_each_neighbor_block(
      0, [&](const NodeID *ids, const EdgeWeight *, const std::size_t count) {
        block_sizes.push_back(count);
        targets.insert(targets.end(), ids, ids + count);
      });
  ASSERT_EQ(block_sizes.size(), 3u);
  EXPECT_EQ(block_sizes[0], kDecodeBlockSize);
  EXPECT_EQ(block_sizes[1], kDecodeBlockSize);
  EXPECT_EQ(block_sizes[2], 17u);
  ASSERT_EQ(targets.size(), degree);
  for (NodeID i = 0; i < degree; ++i) {
    ASSERT_EQ(targets[i], i + 1);
  }
}

TEST(Compression, NeighborhoodSweepSubranges) {
  // The ranged sweep must agree with the per-node block visitor on arbitrary
  // subranges, including ranges that start/end mid-batch and the empty range.
  // weblike neighborhoods are unweighted pure gap streams, so with intervals
  // disabled this exercises the batched fast path across flush boundaries.
  const CsrGraph graph = gen::weblike(500, 20, 1);
  CompressionConfig config;
  config.intervals = false;
  const CompressedGraph compressed = compress_graph(graph, config);

  const NodeID n = graph.n();
  const std::pair<NodeID, NodeID> ranges[] = {
      {0, n}, {0, 1}, {1, n}, {n / 3, 2 * n / 3}, {n - 1, n}, {7, 7}};
  for (const auto &[begin, end] : ranges) {
    const auto sweep = collect_sweep(compressed, begin, end);
    const auto csr_sweep = collect_sweep(graph, begin, end);
    for (NodeID u = 0; u < n; ++u) {
      if (u < begin || u >= end) {
        ASSERT_TRUE(sweep[u].empty()) << "range [" << begin << ", " << end << ") vertex " << u;
        ASSERT_TRUE(csr_sweep[u].empty());
      } else {
        ASSERT_EQ(sweep[u], collect_blocks(compressed, u))
            << "range [" << begin << ", " << end << ") vertex " << u;
        ASSERT_EQ(csr_sweep[u], collect_blocks(graph, u));
      }
    }
  }
}

TEST(Compression, StarGraphUsesChunkedLayout) {
  // One hub with degree 100 >> threshold 16: chunked encoding + parallel
  // iteration must agree with sequential.
  std::vector<std::vector<NodeID>> adjacency(101);
  for (NodeID leaf = 1; leaf <= 100; ++leaf) {
    adjacency[0].push_back(leaf);
    adjacency[leaf].push_back(0);
  }
  const CsrGraph graph = graph_from_adjacency_unweighted(adjacency);
  CompressionConfig config;
  config.high_degree_threshold = 16;
  config.chunk_size = 7;
  const CompressedGraph compressed = compress_graph(graph, config);
  expect_decodes_to(graph, compressed);

  par::set_num_threads(4);
  std::vector<std::atomic<std::uint8_t>> seen(101);
  compressed.for_each_neighbor_parallel(0, [&](const NodeID v, EdgeWeight) {
    seen[v].fetch_add(1);
  });
  for (NodeID leaf = 1; leaf <= 100; ++leaf) {
    ASSERT_EQ(seen[leaf].load(), 1u) << leaf;
  }
  par::set_num_threads(1);
}

TEST(Compression, IntervalEncodingBeatsGapOnlyOnConsecutiveIds) {
  // A graph full of consecutive runs (weblike navigation bars).
  const CsrGraph graph = gen::weblike(4000, 24, 5, 0.9, 128);
  CompressionConfig with_intervals;
  CompressionConfig gap_only;
  gap_only.intervals = false;
  const auto interval_bytes = compress_graph(graph, with_intervals).used_bytes();
  const auto gap_bytes = compress_graph(graph, gap_only).used_bytes();
  EXPECT_LT(interval_bytes, gap_bytes);
}

TEST(Compression, CompressionRatioOrderingByGraphClass) {
  // Web-like graphs compress far better than hash-random kmer graphs
  // (Figure 10's spread).
  const CsrGraph web = gen::weblike(3000, 20, 11, 0.85, 128);
  const CsrGraph kmer = gen::kmer_like(3000, 8, 11);
  const CompressedGraph cweb = compress_graph(web);
  const CompressedGraph ckmer = compress_graph(kmer);
  const double web_ratio = static_cast<double>(cweb.uncompressed_csr_bytes()) /
                           static_cast<double>(cweb.memory_bytes());
  const double kmer_ratio = static_cast<double>(ckmer.uncompressed_csr_bytes()) /
                            static_cast<double>(ckmer.memory_bytes());
  EXPECT_GT(web_ratio, kmer_ratio);
  EXPECT_GT(web_ratio, 2.0);
}

TEST(Compression, EdgeIdsAreContiguousPerNeighborhood) {
  const CsrGraph graph = gen::rgg2d(300, 8, 21);
  const CompressedGraph compressed = compress_graph(graph);
  for (NodeID u = 0; u < graph.n(); ++u) {
    std::vector<EdgeID> ids;
    compressed.for_each_neighbor_with_id(
        u, [&](const EdgeID e, NodeID, EdgeWeight) { ids.push_back(e); });
    ASSERT_EQ(ids.size(), graph.degree(u));
    std::sort(ids.begin(), ids.end());
    for (std::size_t i = 0; i < ids.size(); ++i) {
      ASSERT_EQ(ids[i], graph.first_edge(u) + i);
    }
  }
}

TEST(Compression, DecompressRoundTrip) {
  const CsrGraph graph = gen::with_random_edge_weights(gen::rhg(500, 10, 3.0, 2), 30, 8);
  const CompressedGraph compressed = compress_graph(graph);
  const CsrGraph restored = decompress_graph(compressed);
  ASSERT_EQ(restored.n(), graph.n());
  ASSERT_EQ(restored.m(), graph.m());
  for (NodeID u = 0; u < graph.n(); ++u) {
    std::vector<std::pair<NodeID, EdgeWeight>> a;
    std::vector<std::pair<NodeID, EdgeWeight>> b;
    graph.for_each_neighbor(u, [&](const NodeID v, const EdgeWeight w) { a.emplace_back(v, w); });
    restored.for_each_neighbor(
        u, [&](const NodeID v, const EdgeWeight w) { b.emplace_back(v, w); });
    ASSERT_EQ(a, b);
  }
}

TEST(Compression, SinglePassFromFileMatchesInMemory) {
  const fs::path path = fs::temp_directory_path() /
                        ("terapart_sp_" + std::to_string(::getpid()) + ".tpg");
  const CsrGraph graph = gen::weblike(2000, 18, 31);
  io::write_tpg(path, graph);

  for (const int threads : {1, 4}) {
    par::set_num_threads(threads);
    ParallelCompressionConfig config;
    config.packet_edges = 128;
    const CompressedGraph from_file = compress_tpg_single_pass(path, config);
    const CompressedGraph from_memory = compress_graph(graph, config.compression);
    ASSERT_EQ(from_file.used_bytes(), from_memory.used_bytes());
    ASSERT_TRUE(std::equal(from_file.raw_bytes().begin(), from_file.raw_bytes().end(),
                           from_memory.raw_bytes().begin()));
    EXPECT_EQ(from_file.total_edge_weight(), graph.total_edge_weight());
    EXPECT_EQ(from_file.max_degree(), graph.max_degree());
    expect_decodes_to(graph, from_file);
  }
  par::set_num_threads(1);
  fs::remove(path);
}

TEST(Compression, UpperBoundHolds) {
  for (const auto &spec : {"weblike:n=500,deg=20", "kmer:n=500,deg=6"}) {
    const CsrGraph graph = gen::by_spec(spec, 3);
    const CompressionConfig config;
    const CompressedGraph compressed = compress_graph(graph, config);
    EXPECT_LE(compressed.used_bytes(),
              compressed_size_upper_bound(graph.n(), graph.m(), false, config));
  }
}

} // namespace
} // namespace terapart
