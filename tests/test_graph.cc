// Tests for the graph substrate: CSR construction, builder canonicalization,
// validation, transformations.
#include <gtest/gtest.h>

#include "graph/csr_graph.h"
#include "graph/graph_builder.h"
#include "graph/graph_utils.h"
#include "graph/validation.h"

namespace terapart {
namespace {

CsrGraph triangle() {
  return graph_from_adjacency_unweighted({{1, 2}, {0, 2}, {0, 1}});
}

TEST(CsrGraph, BasicAccessors) {
  const CsrGraph graph = triangle();
  EXPECT_EQ(graph.n(), 3u);
  EXPECT_EQ(graph.m(), 6u);
  EXPECT_EQ(graph.degree(0), 2u);
  EXPECT_EQ(graph.node_weight(0), 1);
  EXPECT_EQ(graph.total_node_weight(), 3);
  EXPECT_EQ(graph.total_edge_weight(), 6);
  EXPECT_EQ(graph.max_degree(), 2u);
  EXPECT_FALSE(graph.is_edge_weighted());
  EXPECT_FALSE(CsrGraph::is_compressed());
}

TEST(CsrGraph, NeighborIteration) {
  const CsrGraph graph = triangle();
  std::vector<NodeID> neighbors;
  graph.for_each_neighbor(1, [&](const NodeID v, const EdgeWeight w) {
    neighbors.push_back(v);
    EXPECT_EQ(w, 1);
  });
  EXPECT_EQ(neighbors, (std::vector<NodeID>{0, 2}));
}

TEST(CsrGraph, NeighborIterationWithIds) {
  const CsrGraph graph = triangle();
  std::vector<EdgeID> ids;
  graph.for_each_neighbor_with_id(2, [&](const EdgeID e, NodeID, EdgeWeight) {
    ids.push_back(e);
  });
  EXPECT_EQ(ids, (std::vector<EdgeID>{4, 5}));
}

TEST(CsrGraph, EmptyGraph) {
  const CsrGraph graph;
  EXPECT_EQ(graph.n(), 0u);
  EXPECT_EQ(graph.m(), 0u);
}

TEST(CsrGraph, IsolatedVertices) {
  const CsrGraph graph = graph_from_adjacency_unweighted({{}, {2}, {1}, {}});
  EXPECT_EQ(graph.n(), 4u);
  EXPECT_EQ(graph.m(), 2u);
  EXPECT_EQ(graph.degree(0), 0u);
  EXPECT_EQ(graph.degree(3), 0u);
  expect_valid_graph(graph);
}

TEST(GraphBuilder, MergesDuplicateEdges) {
  GraphBuilder builder(3);
  builder.add_edge(0, 1, 2);
  builder.add_edge(0, 1, 3); // duplicate: weights sum
  builder.add_edge(1, 2, 1);
  const CsrGraph graph = builder.build(false, true);
  EXPECT_EQ(graph.m(), 4u);
  bool found = false;
  graph.for_each_neighbor(0, [&](const NodeID v, const EdgeWeight w) {
    if (v == 1) {
      EXPECT_EQ(w, 5);
      found = true;
    }
  });
  EXPECT_TRUE(found);
  expect_valid_graph(graph);
}

TEST(GraphBuilder, DropsSelfLoops) {
  GraphBuilder builder(2);
  builder.add_edge(0, 0);
  builder.add_edge(0, 1);
  const CsrGraph graph = builder.build();
  EXPECT_EQ(graph.m(), 2u);
  expect_valid_graph(graph);
}

TEST(GraphBuilder, SymmetrizeAddsMissingReverseEdges) {
  GraphBuilder builder(3);
  builder.add_half_edge(0, 1, 4);
  builder.add_half_edge(2, 0, 1);
  const CsrGraph graph = builder.build(/*symmetrize=*/true, /*edge_weighted=*/true);
  EXPECT_EQ(graph.m(), 4u);
  expect_valid_graph(graph); // validation asserts symmetry with equal weights
}

TEST(GraphBuilder, SymmetrizeSumsBothDirections) {
  GraphBuilder builder(2);
  builder.add_half_edge(0, 1, 3);
  builder.add_half_edge(1, 0, 4);
  const CsrGraph graph = builder.build(true, true);
  graph.for_each_neighbor(0, [&](NodeID, const EdgeWeight w) { EXPECT_EQ(w, 7); });
}

TEST(GraphBuilder, NodeWeights) {
  GraphBuilder builder(2);
  builder.add_edge(0, 1);
  builder.set_node_weights({5, 7});
  const CsrGraph graph = builder.build();
  EXPECT_EQ(graph.node_weight(0), 5);
  EXPECT_EQ(graph.total_node_weight(), 12);
  EXPECT_EQ(graph.max_node_weight(), 7);
}

TEST(Validation, DetectsAsymmetry) {
  // Hand-build a broken graph: edge 0->1 without 1->0.
  CsrGraph graph(std::vector<EdgeID>{0, 1, 1}, std::vector<NodeID>{1});
  EXPECT_FALSE(validate_graph(graph).ok);
}

TEST(Validation, DetectsUnsortedNeighborhood) {
  CsrGraph graph(std::vector<EdgeID>{0, 2, 3, 4}, std::vector<NodeID>{2, 1, 0, 0});
  EXPECT_FALSE(validate_graph(graph).ok);
}

TEST(Validation, AcceptsCanonicalGraph) {
  EXPECT_TRUE(validate_graph(triangle()).ok);
}

TEST(GraphUtils, ExtractSubgraph) {
  // Path 0-1-2-3; select {1, 2, 3}.
  const CsrGraph graph = graph_from_adjacency_unweighted({{1}, {0, 2}, {1, 3}, {2}});
  const std::vector<std::uint8_t> selector = {0, 1, 1, 1};
  const Subgraph sub = extract_subgraph(graph, selector);
  EXPECT_EQ(sub.graph.n(), 3u);
  EXPECT_EQ(sub.graph.m(), 4u); // edges 1-2 and 2-3 survive
  EXPECT_EQ(sub.to_parent, (std::vector<NodeID>{1, 2, 3}));
  expect_valid_graph(sub.graph);
}

TEST(GraphUtils, ExtractEmptySubgraph) {
  const CsrGraph graph = triangle();
  const std::vector<std::uint8_t> selector = {0, 0, 0};
  const Subgraph sub = extract_subgraph(graph, selector);
  EXPECT_EQ(sub.graph.n(), 0u);
}

TEST(GraphUtils, PermutePreservesStructure) {
  const CsrGraph graph = graph_from_adjacency({{{1, 5}}, {{0, 5}, {2, 7}}, {{1, 7}}});
  const std::vector<NodeID> permutation = {2, 0, 1};
  const CsrGraph permuted = permute_graph(graph, permutation);
  expect_valid_graph(permuted);
  EXPECT_EQ(permuted.n(), graph.n());
  EXPECT_EQ(permuted.m(), graph.m());
  EXPECT_EQ(permuted.total_edge_weight(), graph.total_edge_weight());
  // Edge {1,2} weight 7 becomes {0,1} weight 7.
  bool found = false;
  permuted.for_each_neighbor(0, [&](const NodeID v, const EdgeWeight w) {
    if (v == 1) {
      EXPECT_EQ(w, 7);
      found = true;
    }
  });
  EXPECT_TRUE(found);
}

TEST(GraphUtils, ConnectedComponents) {
  const CsrGraph graph = graph_from_adjacency_unweighted({{1}, {0}, {3}, {2}, {}});
  EXPECT_EQ(count_connected_components(graph), 3u);
  EXPECT_EQ(count_connected_components(triangle()), 1u);
}

TEST(GraphUtils, DegreeHistogram) {
  const CsrGraph graph = graph_from_adjacency_unweighted({{}, {2}, {1, 3}, {2}});
  const auto histogram = degree_histogram(graph);
  // degree 0: one vertex; degree 1: two; degree 2: one.
  ASSERT_GE(histogram.size(), 3u);
  EXPECT_EQ(histogram[0], 1u);
  EXPECT_EQ(histogram[1], 2u);
  EXPECT_EQ(histogram[2], 1u);
}

} // namespace
} // namespace terapart
