// Tests for the small utilities: timers, phase timer accumulation, logging
// levels, and the assertion machinery's availability.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/timer.h"

namespace terapart {
namespace {

TEST(Timer, MeasuresElapsedTime) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double elapsed = timer.elapsed_s();
  EXPECT_GE(elapsed, 0.015);
  EXPECT_LT(elapsed, 5.0);
  EXPECT_NEAR(timer.elapsed_ms(), timer.elapsed_s() * 1e3, 50.0);
}

TEST(Timer, RestartResets) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  timer.restart();
  EXPECT_LT(timer.elapsed_s(), 0.015);
}

TEST(PhaseTimer, AccumulatesByName) {
  PhaseTimer timer;
  timer.add("coarsening", 1.0);
  timer.add("refinement", 0.5);
  timer.add("coarsening", 0.25);
  EXPECT_DOUBLE_EQ(timer.total("coarsening"), 1.25);
  EXPECT_DOUBLE_EQ(timer.total("refinement"), 0.5);
  EXPECT_DOUBLE_EQ(timer.total("missing"), 0.0);
}

TEST(PhaseTimer, PreservesFirstRecordedOrder) {
  PhaseTimer timer;
  timer.add("b", 1.0);
  timer.add("a", 1.0);
  timer.add("b", 1.0);
  const auto &entries = timer.entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].first, "b");
  EXPECT_EQ(entries[1].first, "a");
  EXPECT_DOUBLE_EQ(entries[0].second, 2.0);
}

TEST(PhaseTimer, ScopeRecordsOnDestruction) {
  PhaseTimer timer;
  {
    auto scope = timer.scope("phase");
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GT(timer.total("phase"), 0.005);
}

TEST(PhaseTimer, ClearEmpties) {
  PhaseTimer timer;
  timer.add("x", 1.0);
  timer.clear();
  EXPECT_TRUE(timer.entries().empty());
  EXPECT_DOUBLE_EQ(timer.total("x"), 0.0);
}

// Regression test: PhaseTimer used to document itself as "not thread-safe by
// design" while being reachable from worker threads; it is now internally
// locked, and concurrent adds must neither lose time nor corrupt the entry
// list.
TEST(PhaseTimer, ConcurrentAddsAreLossless) {
  PhaseTimer timer;
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&timer, t] {
      const std::string own = "phase_" + std::to_string(t % 2);
      for (int i = 0; i < kAddsPerThread; ++i) {
        timer.add(own, 1.0);
        timer.add("shared", 0.5);
      }
    });
  }
  for (auto &thread : threads) {
    thread.join();
  }

  EXPECT_DOUBLE_EQ(timer.total("shared"), 0.5 * kThreads * kAddsPerThread);
  EXPECT_DOUBLE_EQ(timer.total("phase_0") + timer.total("phase_1"),
                   1.0 * kThreads * kAddsPerThread);
  EXPECT_EQ(timer.entries().size(), 3u);
}

TEST(Logging, LevelGatesOutput) {
  const LogLevel saved = log_level();
  log_level() = LogLevel::kQuiet;
  // Quiet: the statement must be a no-op (we can at least verify it does not
  // crash and the stream expression compiles for arbitrary types).
  LOG_INFO << "hidden " << 42 << " " << 3.14;
  LOG_DEBUG << "also hidden";
  log_level() = LogLevel::kInfo;
  LOG_DEBUG << "still hidden at info level";
  log_level() = saved;
  SUCCEED();
}

} // namespace
} // namespace terapart
