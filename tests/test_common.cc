// Unit tests for the common substrate: varint codec, math helpers, RNG,
// fixed hash map, memory tracker, overcommit arrays, buffers.
#include <gtest/gtest.h>

#include <limits>
#include <map>
#include <numeric>
#include <set>
#include <vector>

#include "common/buffer.h"
#include "common/fixed_hash_map.h"
#include "common/math.h"
#include "common/memory_tracker.h"
#include "common/overcommit.h"
#include "common/random.h"
#include "common/spinlock.h"
#include "common/varint.h"

namespace terapart {
namespace {

// ---------------------------------------------------------------- varint ---

TEST(VarInt, RoundTripSmallValues) {
  std::uint8_t buffer[16];
  for (std::uint64_t value = 0; value < 1000; ++value) {
    const std::size_t written = varint_encode(value, buffer);
    EXPECT_EQ(written, varint_length(value));
    const std::uint8_t *ptr = buffer;
    EXPECT_EQ(varint_decode<std::uint64_t>(ptr), value);
    EXPECT_EQ(ptr, buffer + written);
  }
}

TEST(VarInt, RoundTripBoundaryValues) {
  std::uint8_t buffer[16];
  const std::uint64_t boundaries[] = {0,       127,        128,        16383,      16384,
                                      1 << 21, (1u << 28), 1ULL << 35, 1ULL << 63, ~0ULL};
  for (const std::uint64_t value : boundaries) {
    const std::size_t written = varint_encode(value, buffer);
    const std::uint8_t *ptr = buffer;
    EXPECT_EQ(varint_decode<std::uint64_t>(ptr), value) << value;
    EXPECT_LE(written, kMaxVarIntLength<std::uint64_t>);
  }
}

TEST(VarInt, LengthMatchesSevenBitGroups) {
  EXPECT_EQ(varint_length<std::uint64_t>(0), 1u);
  EXPECT_EQ(varint_length<std::uint64_t>(127), 1u);
  EXPECT_EQ(varint_length<std::uint64_t>(128), 2u);
  EXPECT_EQ(varint_length<std::uint64_t>(16383), 2u);
  EXPECT_EQ(varint_length<std::uint64_t>(16384), 3u);
  EXPECT_EQ(varint_length<std::uint64_t>(~0ULL), 10u);
}

TEST(VarInt, FastDecodeMatchesScalarOnBoundaryValues) {
  // Every encoded length 1..10 bytes, including the maximum-length encodings
  // of uint32 (5 bytes) and uint64 (10 bytes, scalar fallback path).
  std::uint8_t buffer[16 + kVarIntDecodePadding] = {};
  const std::uint64_t boundaries[] = {0,
                                      127,
                                      128,
                                      16383,
                                      16384,
                                      (1ULL << 21) - 1,
                                      1ULL << 21,
                                      (1ULL << 28) - 1,
                                      1ULL << 28,
                                      (1ULL << 35) - 1,
                                      1ULL << 35,
                                      (1ULL << 42) - 1,
                                      (1ULL << 49) - 1,
                                      (1ULL << 56) - 1, // longest 8-byte encoding: fast path
                                      1ULL << 56,       // 9 bytes: scalar fallback
                                      1ULL << 63,
                                      std::numeric_limits<std::uint32_t>::max(),
                                      ~0ULL};
  for (const std::uint64_t value : boundaries) {
    const std::size_t written = varint_encode(value, buffer);
    const std::uint8_t *ptr = buffer;
    EXPECT_EQ(varint_decode_fast<std::uint64_t>(ptr), value) << value;
    EXPECT_EQ(ptr, buffer + written) << value;
    if (value <= std::numeric_limits<std::uint32_t>::max()) {
      ptr = buffer;
      EXPECT_EQ(varint_decode_fast<std::uint32_t>(ptr),
                static_cast<std::uint32_t>(value))
          << value;
    }
  }
}

TEST(VarInt, FastDecodeMatchesScalarOnRandomValues) {
  Random rng(42);
  std::uint8_t buffer[16 + kVarIntDecodePadding] = {};
  for (int trial = 0; trial < 20'000; ++trial) {
    const std::uint64_t value = rng() >> rng.next_bounded(64);
    varint_encode(value, buffer);
    const std::uint8_t *scalar_ptr = buffer;
    const std::uint8_t *fast_ptr = buffer;
    ASSERT_EQ(varint_decode_fast<std::uint64_t>(fast_ptr),
              varint_decode<std::uint64_t>(scalar_ptr));
    ASSERT_EQ(fast_ptr, scalar_ptr);
  }
}

TEST(VarInt, DecodeRunMatchesElementWiseDecode) {
  Random rng(7);
  std::vector<std::uint64_t> values(1000);
  for (auto &value : values) {
    value = rng() >> rng.next_bounded(64);
  }
  std::vector<std::uint8_t> buffer(values.size() * 10 + kVarIntDecodePadding);
  std::size_t bytes = 0;
  for (const std::uint64_t value : values) {
    bytes += varint_encode(value, buffer.data() + bytes);
  }
  std::vector<std::uint64_t> decoded(values.size());
  const std::uint8_t *end = varint_decode_run(buffer.data(), values.size(), decoded.data());
  EXPECT_EQ(end, buffer.data() + bytes);
  EXPECT_EQ(decoded, values);
}

TEST(VarInt, GapRunDecodeMatchesElementWiseDecode) {
  // Mixed-length gap streams against the scalar reference, including the
  // full-group carry regression: eight consecutive 1-byte gaps summing past
  // 255 (a mod-256 byte-sum carry corrupts every later target).
  Random rng(11);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t count = 1 + rng.next_bounded(64);
    std::vector<std::uint32_t> gaps(count);
    for (auto &gap : gaps) {
      switch (rng.next_bounded(4)) {
      case 0: gap = static_cast<std::uint32_t>(64 + rng.next_bounded(64)); break;
      case 1: gap = static_cast<std::uint32_t>(rng.next_bounded(1u << 14)); break;
      case 2: gap = static_cast<std::uint32_t>(rng.next_bounded(1u << 21)); break;
      default: gap = static_cast<std::uint32_t>(rng()); break;
      }
    }
    if (trial == 0) {
      // Deterministic regression shape: nine 1-byte gaps, first eight sum 461.
      gaps.assign({126, 42, 17, 84, 15, 84, 55, 38, 91});
    }
    std::vector<std::uint8_t> buffer(gaps.size() * 5 + kVarIntDecodePadding);
    std::size_t bytes = 0;
    for (const std::uint32_t gap : gaps) {
      bytes += varint_encode(gap, buffer.data() + bytes);
    }
    std::uint32_t prev_ref = static_cast<std::uint32_t>(rng());
    std::uint32_t prev_fast = prev_ref;
    std::vector<std::uint32_t> expected(gaps.size());
    const std::uint8_t *ref_ptr = buffer.data();
    for (std::size_t i = 0; i < gaps.size(); ++i) {
      prev_ref += 1 + static_cast<std::uint32_t>(varint_decode<std::uint64_t>(ref_ptr));
      expected[i] = prev_ref;
    }
    std::vector<std::uint32_t> decoded(gaps.size() + 8);
    const std::uint8_t *end =
        varint_gap_run_decode(buffer.data(), gaps.size(), prev_fast, decoded.data());
    decoded.resize(gaps.size());
    EXPECT_EQ(decoded, expected) << "trial " << trial;
    EXPECT_EQ(end, buffer.data() + bytes) << "trial " << trial;
    EXPECT_EQ(prev_fast, prev_ref) << "trial " << trial;
  }
}

TEST(VarInt, DispatchedGapRunDecodeMatchesBaseline) {
  // The dispatched kernel (AVX2 where supported, otherwise the SSE2/scalar
  // baseline itself) must be bit-identical to the baseline on the same fuzz
  // stream shapes, including runs long enough to hit the 16-wide path and
  // streams that alternate between 1-byte groups and multi-byte gaps.
  Random rng(13);
  for (int trial = 0; trial < 300; ++trial) {
    const std::size_t count = 1 + rng.next_bounded(trial % 3 == 0 ? 512 : 48);
    std::vector<std::uint32_t> gaps(count);
    for (auto &gap : gaps) {
      switch (rng.next_bounded(6)) {
      case 0:
      case 1:
      case 2: gap = static_cast<std::uint32_t>(rng.next_bounded(128)); break; // 1-byte
      case 3: gap = static_cast<std::uint32_t>(rng.next_bounded(1u << 14)); break;
      case 4: gap = static_cast<std::uint32_t>(rng.next_bounded(1u << 21)); break;
      default: gap = static_cast<std::uint32_t>(rng()); break;
      }
    }
    std::vector<std::uint8_t> buffer(gaps.size() * 5 + kVarIntDecodePadding);
    std::size_t bytes = 0;
    for (const std::uint32_t gap : gaps) {
      bytes += varint_encode(gap, buffer.data() + bytes);
    }
    std::uint32_t prev_base = static_cast<std::uint32_t>(rng());
    std::uint32_t prev_auto = prev_base;
    std::vector<std::uint32_t> base(gaps.size() + 8);
    std::vector<std::uint32_t> dispatched(gaps.size() + 8);
    const std::uint8_t *end_base =
        varint_gap_run_decode(buffer.data(), gaps.size(), prev_base, base.data());
    const std::uint8_t *end_auto =
        varint_gap_run_decode_auto(buffer.data(), gaps.size(), prev_auto, dispatched.data());
    base.resize(gaps.size());
    dispatched.resize(gaps.size());
    EXPECT_EQ(dispatched, base) << "trial " << trial;
    EXPECT_EQ(end_auto, end_base) << "trial " << trial;
    EXPECT_EQ(prev_auto, prev_base) << "trial " << trial;
  }
}

TEST(VarInt, IntervalFillMatchesScalar) {
  Random rng(17);
  for (int trial = 0; trial < 100; ++trial) {
    const std::uint32_t count = rng.next_bounded(200);
    const auto first = static_cast<std::uint32_t>(rng());
    // Canary-guarded: interval_fill must write exactly `count` entries.
    std::vector<std::uint32_t> out(count + 2, 0xdeadbeef);
    interval_fill(first, count, out.data());
    for (std::uint32_t i = 0; i < count; ++i) {
      ASSERT_EQ(out[i], first + i) << "trial " << trial << " index " << i;
    }
    EXPECT_EQ(out[count], 0xdeadbeefu) << "trial " << trial;
    EXPECT_EQ(out[count + 1], 0xdeadbeefu) << "trial " << trial;
  }
}

TEST(VarInt, Avx2DispatchIsConsistent) {
  // Whatever the CPU reports, the dispatch must be stable across calls (a
  // per-process constant) — flapping would mix tiers mid-decode.
  const bool first = varint_have_avx2();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(varint_have_avx2(), first);
  }
}

TEST(VarInt, SignedFastDecodeRoundTrip) {
  std::uint8_t buffer[16 + kVarIntDecodePadding] = {};
  for (const std::int64_t value : {0L, 5L, -5L, 123456L, -123456L,
                                   std::numeric_limits<std::int64_t>::max(),
                                   std::numeric_limits<std::int64_t>::min()}) {
    signed_varint_encode(value, buffer);
    const std::uint8_t *ptr = buffer;
    EXPECT_EQ(signed_varint_decode_fast<std::int64_t>(ptr), value) << value;
  }
}

TEST(VarIntDeathTest, OverlongVarIntIsRejected) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // An 8-byte encoding far exceeds kMaxVarIntLength<uint32_t> == 5: both
  // decoders must trip the contract check rather than silently wrap.
  std::uint8_t overlong[16] = {0x81, 0x81, 0x81, 0x81, 0x81, 0x81, 0x81, 0x01};
  EXPECT_DEATH(
      {
        const std::uint8_t *ptr = overlong;
        volatile std::uint32_t value = varint_decode<std::uint32_t>(ptr);
        (void)value;
      },
      "overlong");
  EXPECT_DEATH(
      {
        const std::uint8_t *ptr = overlong;
        volatile std::uint32_t value = varint_decode_fast<std::uint32_t>(ptr);
        (void)value;
      },
      "overlong");
}

TEST(VarInt, ZigzagRoundTrip) {
  for (std::int64_t value : {0L, 1L, -1L, 63L, -64L, 1000000L, -1000000L,
                             std::numeric_limits<std::int64_t>::max(),
                             std::numeric_limits<std::int64_t>::min()}) {
    EXPECT_EQ(zigzag_decode(zigzag_encode(value)), value);
  }
}

TEST(VarInt, ZigzagSmallMagnitudesEncodeSmall) {
  // |x| <= 63 must fit one byte.
  for (std::int64_t value = -63; value <= 63; ++value) {
    EXPECT_EQ(signed_varint_length(value), 1u) << value;
  }
  EXPECT_EQ(signed_varint_length<std::int64_t>(64), 2u);
  EXPECT_EQ(signed_varint_length<std::int64_t>(-64), 1u);
}

TEST(VarInt, SignedRoundTrip) {
  std::uint8_t buffer[16];
  for (std::int64_t value : {0L, 5L, -5L, 123456L, -123456L}) {
    signed_varint_encode(value, buffer);
    const std::uint8_t *ptr = buffer;
    EXPECT_EQ(signed_varint_decode<std::int64_t>(ptr), value);
  }
}

TEST(VarInt, ConcatenatedStreamDecodes) {
  std::vector<std::uint8_t> stream;
  std::vector<std::uint64_t> values;
  Random rng(7);
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t value = rng() >> (rng.next_bounded(60));
    values.push_back(value);
    std::uint8_t buffer[16];
    const std::size_t written = varint_encode(value, buffer);
    stream.insert(stream.end(), buffer, buffer + written);
  }
  const std::uint8_t *ptr = stream.data();
  for (const std::uint64_t value : values) {
    EXPECT_EQ(varint_decode<std::uint64_t>(ptr), value);
  }
  EXPECT_EQ(ptr, stream.data() + stream.size());
}

// ------------------------------------------------------------------ math ---

TEST(Math, DivCeil) {
  EXPECT_EQ(math::div_ceil(10, 3), 4);
  EXPECT_EQ(math::div_ceil(9, 3), 3);
  EXPECT_EQ(math::div_ceil(0, 3), 0);
  EXPECT_EQ(math::div_ceil(1, 1), 1);
}

TEST(Math, CeilPow2) {
  EXPECT_EQ(math::ceil_pow2(0u), 1u);
  EXPECT_EQ(math::ceil_pow2(1u), 1u);
  EXPECT_EQ(math::ceil_pow2(3u), 4u);
  EXPECT_EQ(math::ceil_pow2(1024u), 1024u);
  EXPECT_EQ(math::ceil_pow2(1025u), 2048u);
}

TEST(Math, Logs) {
  EXPECT_EQ(math::floor_log2(1u), 0);
  EXPECT_EQ(math::floor_log2(7u), 2);
  EXPECT_EQ(math::floor_log2(8u), 3);
  EXPECT_EQ(math::ceil_log2(1u), 0);
  EXPECT_EQ(math::ceil_log2(7u), 3);
  EXPECT_EQ(math::ceil_log2(8u), 3);
}

TEST(Math, ChunkBoundsPartitionTheRange) {
  for (unsigned n : {0u, 1u, 7u, 100u, 101u}) {
    for (unsigned chunks : {1u, 2u, 3u, 7u, 32u}) {
      unsigned expected_begin = 0;
      for (unsigned i = 0; i < chunks; ++i) {
        const auto [begin, end] = math::chunk_bounds(n, chunks, i);
        EXPECT_EQ(begin, expected_begin);
        EXPECT_LE(end - begin, n / chunks + 1);
        expected_begin = end;
      }
      EXPECT_EQ(expected_begin, n);
    }
  }
}

// ---------------------------------------------------------------- random ---

TEST(Random, DeterministicPerSeed) {
  Random a(42);
  Random b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Random, StreamsAreIndependent) {
  Random a = Random::stream(42, 0);
  Random b = Random::stream(42, 1);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    equal += a() == b() ? 1 : 0;
  }
  EXPECT_LT(equal, 5);
}

TEST(Random, BoundedStaysInBounds) {
  Random rng(3);
  for (std::uint64_t bound : {1ULL, 2ULL, 17ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_bounded(bound), bound);
    }
  }
}

TEST(Random, DoubleInUnitInterval) {
  Random rng(4);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Random, ShuffleIsAPermutation) {
  std::vector<int> values(100);
  std::iota(values.begin(), values.end(), 0);
  Random rng(9);
  rng.shuffle(values);
  std::set<int> distinct(values.begin(), values.end());
  EXPECT_EQ(distinct.size(), 100u);
  EXPECT_NE(values[0] * 100 + values[1], 0 * 100 + 1); // moved with overwhelming probability
}

// ------------------------------------------------------------ SeedSequence ---

// The documented seed schedule of the multilevel pipeline. These values are
// frozen: they reproduce the historical driver's magic offsets (base + 13 +
// level for intermediate refinement, base + 99 for the finest level, +1 for
// the FM stage), so every partition produced before the SeedSequence
// refactor stays bit-identical.
TEST(SeedSequence, MatchesLegacySeedSchedule) {
  const std::uint64_t base = 42;
  const SeedSequence seeds(base);
  EXPECT_EQ(seeds.base(), base);
  EXPECT_EQ(seeds.coarsening(), base);
  EXPECT_EQ(seeds.initial_partitioning(), base);

  const std::size_t num_levels = 5;
  // Coarsest level: the historical "seed + 13".
  EXPECT_EQ(seeds.refinement(num_levels, num_levels), base + 13);
  // Intermediate levels: "seed + 13 + level".
  for (std::size_t level = 1; level < num_levels; ++level) {
    EXPECT_EQ(seeds.refinement(level, num_levels), base + 13 + level);
  }
  // Finest (input graph) level: the historical "seed + 99".
  EXPECT_EQ(seeds.refinement(0, num_levels), base + 99);
  // FM runs on the refinement seed "+ 1".
  EXPECT_EQ(SeedSequence::fm_stage(seeds.refinement(2, num_levels)), base + 13 + 2 + 1);
}

TEST(SeedSequence, SingleLevelHierarchyCoarsestIsNotFinest) {
  // With one coarse level, level 1 is the coarsest (+13) and level 0 the
  // finest (+99) — they must not collide.
  const SeedSequence seeds(7);
  EXPECT_EQ(seeds.refinement(1, 1), 7u + 13u);
  EXPECT_EQ(seeds.refinement(0, 1), 7u + 99u);
}

TEST(SeedSequence, EmptyHierarchyUsesFinestSeed) {
  // No coarse levels at all: the only refinement pass runs on the input
  // graph with the finest seed.
  const SeedSequence seeds(123);
  EXPECT_EQ(seeds.refinement(0, 0), 123u + 99u);
}

// ----------------------------------------------------------- FixedHashMap ---

TEST(FixedHashMap, AggregatesValues) {
  FixedHashMap<std::uint32_t, std::int64_t> map(8);
  EXPECT_TRUE(map.add(5, 10));
  EXPECT_TRUE(map.add(5, 7));
  EXPECT_TRUE(map.add(9, 1));
  EXPECT_EQ(map.get(5), 17);
  EXPECT_EQ(map.get(9), 1);
  EXPECT_EQ(map.get(1), 0);
  EXPECT_EQ(map.size(), 2u);
}

TEST(FixedHashMap, RejectsNewKeysWhenFull) {
  FixedHashMap<std::uint32_t, std::int64_t> map(3);
  EXPECT_TRUE(map.add(1, 1));
  EXPECT_TRUE(map.add(2, 1));
  EXPECT_TRUE(map.add(3, 1));
  EXPECT_TRUE(map.full());
  EXPECT_FALSE(map.add(4, 1)); // new key rejected
  EXPECT_TRUE(map.add(2, 5));  // existing key still aggregates
  EXPECT_EQ(map.get(2), 6);
}

TEST(FixedHashMap, ClearResets) {
  FixedHashMap<std::uint32_t, std::int64_t> map(4);
  map.add(1, 1);
  map.add(2, 2);
  map.clear();
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.get(1), 0);
  EXPECT_TRUE(map.add(3, 3));
  EXPECT_EQ(map.get(3), 3);
}

TEST(FixedHashMap, ForEachVisitsAllEntriesOnce) {
  FixedHashMap<std::uint32_t, std::int64_t> map(64);
  std::int64_t expected_sum = 0;
  for (std::uint32_t key = 0; key < 64; ++key) {
    map.add(key * 1000003u, key);
    expected_sum += key;
  }
  std::int64_t sum = 0;
  std::size_t count = 0;
  map.for_each([&](std::uint32_t, const std::int64_t value) {
    sum += value;
    ++count;
  });
  EXPECT_EQ(sum, expected_sum);
  EXPECT_EQ(count, 64u);
}

TEST(FixedHashMap, StressAgainstReference) {
  FixedHashMap<std::uint32_t, std::int64_t> map(256);
  std::map<std::uint32_t, std::int64_t> reference;
  Random rng(11);
  for (int i = 0; i < 2000; ++i) {
    const auto key = static_cast<std::uint32_t>(rng.next_bounded(200));
    const auto delta = static_cast<std::int64_t>(rng.next_bounded(50)) + 1;
    EXPECT_TRUE(map.add(key, delta));
    reference[key] += delta;
  }
  for (const auto &[key, value] : reference) {
    EXPECT_EQ(map.get(key), value);
  }
  EXPECT_EQ(map.size(), reference.size());
}

// ----------------------------------------------------------- MemoryTracker ---

TEST(MemoryTracker, TracksPeakAndCategories) {
  MemoryTracker &tracker = MemoryTracker::global();
  tracker.reset();
  tracker.acquire("a", 100);
  tracker.acquire("b", 50);
  EXPECT_EQ(tracker.current(), 150u);
  tracker.release("a", 100);
  EXPECT_EQ(tracker.current(), 50u);
  EXPECT_EQ(tracker.peak(), 150u);
  EXPECT_EQ(tracker.current("b"), 50u);
  EXPECT_EQ(tracker.peak("a"), 100u);
  tracker.reset();
  EXPECT_EQ(tracker.peak(), 0u);
}

TEST(MemoryTracker, TrackedAllocRaii) {
  MemoryTracker &tracker = MemoryTracker::global();
  tracker.reset();
  {
    TrackedAlloc alloc("scope", 42);
    EXPECT_EQ(tracker.current("scope"), 42u);
    TrackedAlloc moved = std::move(alloc);
    EXPECT_EQ(tracker.current("scope"), 42u);
    moved.resize(100);
    EXPECT_EQ(tracker.current("scope"), 100u);
  }
  EXPECT_EQ(tracker.current("scope"), 0u);
  EXPECT_EQ(tracker.peak("scope"), 100u);
}

TEST(MemoryTracker, ResetPeakKeepsCurrent) {
  MemoryTracker &tracker = MemoryTracker::global();
  tracker.reset();
  tracker.acquire("x", 10);
  tracker.acquire("x", 90);
  tracker.release("x", 90);
  tracker.reset_peak();
  EXPECT_EQ(tracker.peak(), 10u);
  tracker.reset();
}

// --------------------------------------------------------------- overcommit ---

TEST(Overcommit, AllocatesAndTouchesSparsely) {
  // Reserve 1 GiB of address space; touch only a little.
  OvercommitArray<std::uint64_t> array(128 * 1024 * 1024);
  ASSERT_TRUE(array.valid());
  array[0] = 1;
  array[1000] = 2;
  array[10'000'000] = 3;
  EXPECT_EQ(array[0], 1u);
  EXPECT_EQ(array[1000], 2u);
  EXPECT_EQ(array[10'000'000], 3u);
  EXPECT_EQ(array[5], 0u); // anonymous pages are zero-filled
}

TEST(Overcommit, ShrinkKeepsPrefix) {
  OvercommitArray<std::uint32_t> array(1 << 20);
  for (std::size_t i = 0; i < 1000; ++i) {
    array[i] = static_cast<std::uint32_t>(i);
  }
  array.shrink_to(1000);
  for (std::size_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(array[i], i);
  }
  EXPECT_EQ(array.capacity(), 1000u);
}

/// Regression: shrink_to(0) used to round the kept range down to zero pages
/// and munmap the whole mapping *without* clearing _data, leaving a dangling
/// pointer that the destructor (and any later shrink) would unmap again.
TEST(Overcommit, ShrinkToZeroReleasesMapping) {
  OvercommitStorage storage(1 << 20);
  ASSERT_TRUE(storage.valid());
  storage.shrink_to(0);
  EXPECT_FALSE(storage.valid());
  EXPECT_EQ(storage.data(), nullptr);
  EXPECT_EQ(storage.capacity_bytes(), 0u);
  storage.shrink_to(0); // idempotent on the released mapping
  storage.release();    // and release() stays safe too
  // destructor must not munmap a stale range (ASan/valgrind would flag it)
}

TEST(Overcommit, ArrayShrinkToZeroAllowsReuse) {
  OvercommitArray<std::uint32_t> array(1 << 16);
  array[0] = 42;
  array.shrink_to(0);
  EXPECT_FALSE(array.valid());
  EXPECT_EQ(array.capacity(), 0u);
  // The array object stays usable: a fresh reservation works afterwards.
  ASSERT_TRUE(array.try_reserve(128));
  EXPECT_EQ(array.capacity(), 128u);
  array[0] = 7;
  EXPECT_EQ(array[0], 7u);
}

TEST(Overcommit, TryReserveFailureLeavesArrayEmpty) {
  OvercommitArray<std::uint64_t> array;
  // Element count whose byte size overflows std::size_t: rejected before mmap.
  EXPECT_FALSE(array.try_reserve(static_cast<std::size_t>(-1)));
  EXPECT_FALSE(array.valid());
  EXPECT_EQ(array.capacity(), 0u);
  // An absurd (but non-overflowing) reservation the kernel refuses: the array
  // must stay empty and reusable rather than half-initialized.
  if (!array.try_reserve(static_cast<std::size_t>(1) << 58)) {
    EXPECT_FALSE(array.valid());
    EXPECT_EQ(array.capacity(), 0u);
  } else {
    array.shrink_to(0); // some kernels grant it; just clean up
  }
  ASSERT_TRUE(array.try_reserve(64));
  array[63] = 9;
  EXPECT_EQ(array[63], 9u);
}

TEST(Buffer, AdoptsVectorAndOvercommit) {
  Buffer<int> from_vector(std::vector<int>{1, 2, 3});
  EXPECT_EQ(from_vector.size(), 3u);
  EXPECT_EQ(from_vector[2], 3);

  OvercommitArray<int> array(4096);
  array[0] = 7;
  array[1] = 8;
  Buffer<int> from_overcommit(std::move(array), 2);
  EXPECT_EQ(from_overcommit.size(), 2u);
  EXPECT_EQ(from_overcommit[0], 7);
  EXPECT_EQ(from_overcommit.back(), 8);
}

TEST(Spinlock, MutualExclusionSmoke) {
  Spinlock lock;
  EXPECT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

} // namespace
} // namespace terapart
