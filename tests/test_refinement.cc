// Tests for the refiners: size-constrained LP, parallel localized k-way FM
// (all three gain-table modes), and the rebalancer.
#include <gtest/gtest.h>

#include "common/random.h"
#include "generators/generators.h"
#include "graph/graph_builder.h"
#include "partition/metrics.h"
#include "partition/partitioned_graph.h"
#include "refinement/fm_refiner.h"
#include "refinement/lp_refiner.h"
#include "refinement/rebalancer.h"
#include "parallel/thread_pool.h"

namespace terapart {
namespace {

std::vector<BlockID> random_partition(const NodeID n, const BlockID k, const std::uint64_t seed) {
  std::vector<BlockID> partition(n);
  Random rng(seed);
  for (auto &b : partition) {
    b = static_cast<BlockID>(rng.next_bounded(k));
  }
  return partition;
}

bool within_bound(const CsrGraph &graph, const PartitionedGraph &partitioned,
                  const BlockWeight bound) {
  const auto weights = metrics::block_weights(graph, partitioned.partition(), partitioned.k());
  for (const BlockWeight weight : weights) {
    if (weight > bound) {
      return false;
    }
  }
  return true;
}

TEST(PartitionedGraph, MoveSemantics) {
  const CsrGraph graph = gen::grid2d(4, 4);
  PartitionedGraph partitioned(graph, 2, std::vector<BlockID>(16, 0));
  EXPECT_EQ(partitioned.block_weight(0), 16);
  EXPECT_EQ(partitioned.block_weight(1), 0);

  EXPECT_TRUE(partitioned.try_move(3, 1, 1, 100));
  EXPECT_EQ(partitioned.block(3), 1u);
  EXPECT_EQ(partitioned.block_weight(0), 15);
  EXPECT_EQ(partitioned.block_weight(1), 1);

  // Bound blocks the move.
  EXPECT_FALSE(partitioned.try_move(4, 1, 1, 1));
  EXPECT_EQ(partitioned.block(4), 0u);

  // force_move ignores the bound.
  partitioned.force_move(4, 1, 1);
  EXPECT_EQ(partitioned.block(4), 1u);

  // Moving to the same block is a no-op.
  EXPECT_FALSE(partitioned.try_move(4, 1, 1, 100));
}

class RefinerThreadTest : public ::testing::TestWithParam<int> {
protected:
  void SetUp() override { par::set_num_threads(GetParam()); }
  void TearDown() override { par::set_num_threads(1); }
};

INSTANTIATE_TEST_SUITE_P(Threads, RefinerThreadTest, ::testing::Values(1, 4));

TEST_P(RefinerThreadTest, LpRefinerImprovesRandomPartitions) {
  for (const auto &spec : {"grid2d:rows=30,cols=30", "rgg2d:n=1000,deg=10"}) {
    const CsrGraph graph = gen::by_spec(spec, 3);
    const BlockID k = 4;
    const BlockWeight bound =
        metrics::max_block_weight(graph.total_node_weight(), k, 0.10);
    PartitionedGraph partitioned(graph, k, random_partition(graph.n(), k, 5));
    const EdgeWeight before = metrics::edge_cut(graph, partitioned.partition());
    const auto moves = lp_refine(graph, partitioned, bound, LpRefinementConfig{}, 7);
    const EdgeWeight after = metrics::edge_cut(graph, partitioned.partition());
    EXPECT_GT(moves, 0u) << spec;
    EXPECT_LT(after, before) << spec;
    EXPECT_TRUE(within_bound(graph, partitioned, bound)) << spec;
  }
}

TEST_P(RefinerThreadTest, LpRefinerKeepsBalancedInputBalanced) {
  const CsrGraph graph = gen::rhg(800, 12, 3.0, 9);
  const BlockID k = 8;
  const BlockWeight bound = metrics::max_block_weight(graph.total_node_weight(), k, 0.03);
  // Round-robin start: balanced.
  std::vector<BlockID> partition(graph.n());
  for (NodeID u = 0; u < graph.n(); ++u) {
    partition[u] = static_cast<BlockID>(u % k);
  }
  PartitionedGraph partitioned(graph, k, std::move(partition));
  lp_refine(graph, partitioned, bound, LpRefinementConfig{}, 11);
  EXPECT_TRUE(within_bound(graph, partitioned, bound));
}

struct FmCase {
  std::string name;
  GainTableKind kind;
};

class FmRefinerTest : public ::testing::TestWithParam<FmCase> {};

INSTANTIATE_TEST_SUITE_P(Tables, FmRefinerTest,
                         ::testing::Values(FmCase{"none", GainTableKind::kNone},
                                           FmCase{"dense", GainTableKind::kDense},
                                           FmCase{"sparse", GainTableKind::kSparse}),
                         [](const auto &info) { return info.param.name; });

TEST_P(FmRefinerTest, ImprovesTheCutSingleThreaded) {
  par::set_num_threads(1);
  const CsrGraph graph = gen::grid2d(24, 24);
  const BlockID k = 4;
  const BlockWeight bound = metrics::max_block_weight(graph.total_node_weight(), k, 0.10);
  // Striped start: terrible cut, balanced.
  std::vector<BlockID> partition(graph.n());
  for (NodeID u = 0; u < graph.n(); ++u) {
    partition[u] = static_cast<BlockID>(u % k);
  }
  PartitionedGraph partitioned(graph, k, std::move(partition));
  const EdgeWeight before = metrics::edge_cut(graph, partitioned.partition());

  FmConfig config;
  config.gain_table = GetParam().kind;
  const FmStats stats = fm_refine(graph, partitioned, bound, config, 13);
  const EdgeWeight after = metrics::edge_cut(graph, partitioned.partition());

  EXPECT_LT(after, before);
  EXPECT_EQ(before - after, stats.improvement);
  EXPECT_GT(stats.moves, 0u);
  EXPECT_GT(stats.gain_queries, stats.moves); // gains inspected >> moves (Section V)
}

TEST_P(FmRefinerTest, ParallelRunStaysConsistent) {
  par::set_num_threads(4);
  const CsrGraph graph = gen::rgg2d(1500, 12, 3);
  const BlockID k = 8;
  const BlockWeight bound = metrics::max_block_weight(graph.total_node_weight(), k, 0.10);
  PartitionedGraph partitioned(graph, k, random_partition(graph.n(), k, 7));
  lp_refine(graph, partitioned, bound, LpRefinementConfig{}, 3); // plausible start
  const EdgeWeight before = metrics::edge_cut(graph, partitioned.partition());

  FmConfig config;
  config.gain_table = GetParam().kind;
  fm_refine(graph, partitioned, bound, config, 17);
  rebalance(graph, partitioned, bound);
  const EdgeWeight after = metrics::edge_cut(graph, partitioned.partition());

  // Block weights bookkeeping must match a recount.
  const auto recount = metrics::block_weights(graph, partitioned.partition(), k);
  for (BlockID b = 0; b < k; ++b) {
    ASSERT_EQ(recount[b], partitioned.block_weight(b));
  }
  EXPECT_TRUE(within_bound(graph, partitioned, bound));
  EXPECT_LE(after, before + before / 10); // no catastrophic regression
  par::set_num_threads(1);
}

TEST(FmRefiner, AllTableKindsReachSimilarQuality) {
  par::set_num_threads(1);
  const CsrGraph graph = gen::rgg2d(800, 10, 23);
  const BlockID k = 4;
  const BlockWeight bound = metrics::max_block_weight(graph.total_node_weight(), k, 0.10);

  std::vector<EdgeWeight> cuts;
  for (const GainTableKind kind :
       {GainTableKind::kNone, GainTableKind::kDense, GainTableKind::kSparse}) {
    PartitionedGraph partitioned(graph, k, random_partition(graph.n(), k, 29));
    lp_refine(graph, partitioned, bound, LpRefinementConfig{}, 3);
    FmConfig config;
    config.gain_table = kind;
    fm_refine(graph, partitioned, bound, config, 31);
    cuts.push_back(metrics::edge_cut(graph, partitioned.partition()));
  }
  // Identical seeds + identical algorithm => identical decisions regardless
  // of how gains are *stored*.
  EXPECT_EQ(cuts[0], cuts[1]);
  EXPECT_EQ(cuts[1], cuts[2]);
}

TEST(Rebalancer, RepairsAnOverloadedBlock) {
  const CsrGraph graph = gen::grid2d(20, 20);
  const BlockID k = 4;
  // Everything in block 0: maximally imbalanced.
  PartitionedGraph partitioned(graph, k, std::vector<BlockID>(graph.n(), 0));
  const BlockWeight bound = metrics::max_block_weight(graph.total_node_weight(), k, 0.03);
  EXPECT_FALSE(within_bound(graph, partitioned, bound));
  const auto moves = rebalance(graph, partitioned, bound);
  EXPECT_GT(moves, 0u);
  EXPECT_TRUE(within_bound(graph, partitioned, bound));
}

TEST(Rebalancer, NoOpOnBalancedPartition) {
  const CsrGraph graph = gen::grid2d(10, 10);
  const BlockID k = 2;
  std::vector<BlockID> partition(graph.n());
  for (NodeID u = 0; u < graph.n(); ++u) {
    partition[u] = u < graph.n() / 2 ? 0 : 1;
  }
  PartitionedGraph partitioned(graph, k, std::move(partition));
  const BlockWeight bound = metrics::max_block_weight(graph.total_node_weight(), k, 0.03);
  EXPECT_EQ(rebalance(graph, partitioned, bound), 0u);
}

TEST(Rebalancer, PrefersLowLossMoves) {
  // Two cliques joined by one edge, everything in block 0. Rebalancing to 2
  // blocks should split along the bridge (cut 1), not through a clique.
  std::vector<std::vector<NodeID>> adjacency(8);
  for (NodeID a = 0; a < 4; ++a) {
    for (NodeID b = a + 1; b < 4; ++b) {
      adjacency[a].push_back(b);
      adjacency[b].push_back(a);
    }
  }
  for (NodeID a = 4; a < 8; ++a) {
    for (NodeID b = a + 1; b < 8; ++b) {
      adjacency[a].push_back(b);
      adjacency[b].push_back(a);
    }
  }
  adjacency[3].push_back(4);
  adjacency[4].push_back(3);
  const CsrGraph graph = graph_from_adjacency_unweighted(adjacency);
  PartitionedGraph partitioned(graph, 2, std::vector<BlockID>(8, 0));
  rebalance(graph, partitioned, 4);
  EXPECT_LE(partitioned.block_weight(0), 4);
  // One-shot greedy cannot guarantee the optimal bridge split (cut 1), but
  // it must stay well below a clique-shredding random split (cut ~8-10).
  EXPECT_LE(metrics::edge_cut(graph, partitioned.partition()), 8);
}

} // namespace
} // namespace terapart
