// Tests for label propagation clustering (Section IV-A): validity of the
// produced clusterings, the weight constraint, the two-phase bump machinery,
// and two-hop matching.
#include <gtest/gtest.h>

#include <map>

#include "coarsening/lp_clustering.h"
#include "compression/encoder.h"
#include "generators/generators.h"
#include "graph/graph_builder.h"
#include "parallel/thread_pool.h"

namespace terapart {
namespace {

/// Recomputes cluster weights and checks the bound + label range.
void expect_valid_clustering(const CsrGraph &graph, const std::vector<ClusterID> &clustering,
                             const NodeWeight max_cluster_weight) {
  ASSERT_EQ(clustering.size(), graph.n());
  std::map<ClusterID, NodeWeight> weights;
  for (NodeID u = 0; u < graph.n(); ++u) {
    ASSERT_LT(clustering[u], graph.n());
    weights[clustering[u]] += graph.node_weight(u);
  }
  const NodeWeight bound = std::max(max_cluster_weight, graph.max_node_weight());
  for (const auto &[cluster, weight] : weights) {
    ASSERT_LE(weight, bound) << "cluster " << cluster;
  }
}

NodeID count_clusters(const std::vector<ClusterID> &clustering) {
  std::set<ClusterID> distinct(clustering.begin(), clustering.end());
  return static_cast<NodeID>(distinct.size());
}

struct LpCase {
  std::string name;
  bool two_phase;
  int threads;
};

class LpClusteringTest : public ::testing::TestWithParam<LpCase> {
protected:
  void SetUp() override { par::set_num_threads(GetParam().threads); }
  void TearDown() override { par::set_num_threads(1); }
};

INSTANTIATE_TEST_SUITE_P(
    Modes, LpClusteringTest,
    ::testing::Values(LpCase{"classic_p1", false, 1}, LpCase{"classic_p4", false, 4},
                      LpCase{"two_phase_p1", true, 1}, LpCase{"two_phase_p4", true, 4}),
    [](const auto &info) { return info.param.name; });

TEST_P(LpClusteringTest, ValidClusteringOnMixedGraphs) {
  for (const auto &spec : {"rgg2d:n=1500,deg=12", "rhg:n=1500,deg=14,gamma=2.8",
                           "weblike:n=1200,deg=16", "grid2d:rows=40,cols=40"}) {
    const CsrGraph graph = gen::by_spec(spec, 5);
    LpClusteringConfig config;
    config.two_phase = GetParam().two_phase;
    const NodeWeight bound = std::max<NodeWeight>(1, graph.total_node_weight() / 64);
    const auto clustering = lp_cluster(graph, config, bound, 99);
    expect_valid_clustering(graph, clustering, bound);
    // LP must shrink such graphs substantially.
    EXPECT_LT(count_clusters(clustering), graph.n() / 2) << spec;
  }
}

TEST_P(LpClusteringTest, RespectsTightWeightBound) {
  const CsrGraph graph = gen::rgg2d(800, 10, 3);
  LpClusteringConfig config;
  config.two_phase = GetParam().two_phase;
  const NodeWeight bound = 3; // at most 3 unit vertices per cluster
  const auto clustering = lp_cluster(graph, config, bound, 1);
  expect_valid_clustering(graph, clustering, bound);
}

TEST_P(LpClusteringTest, SingletonBoundKeepsEveryoneApart) {
  const CsrGraph graph = gen::grid2d(20, 20);
  LpClusteringConfig config;
  config.two_phase = GetParam().two_phase;
  config.two_hop = false;
  const auto clustering = lp_cluster(graph, config, /*max_cluster_weight=*/1, 1);
  EXPECT_EQ(count_clusters(clustering), graph.n());
}

TEST(LpClustering, TwoPhaseBumpsHighNcVertices) {
  // A hub adjacent to 200 mutually non-adjacent leaves: with T_bump = 16 the
  // hub must take the second phase (its rating map sees up to 200 clusters).
  std::vector<std::vector<NodeID>> adjacency(201);
  for (NodeID leaf = 1; leaf <= 200; ++leaf) {
    adjacency[0].push_back(leaf);
    adjacency[leaf].push_back(0);
  }
  const CsrGraph graph = graph_from_adjacency_unweighted(adjacency);
  LpClusteringConfig config;
  config.two_phase = true;
  config.bump_threshold = 16;
  config.two_hop = false;
  LpClusteringStats stats;
  const auto clustering =
      lp_cluster(graph, config, graph.total_node_weight(), 7, &stats);
  EXPECT_GT(stats.bumped_vertices, 0u);
  expect_valid_clustering(graph, clustering, graph.total_node_weight());
}

TEST(LpClustering, TwoHopMatchingMergesStarLeaves) {
  // Star with a tight bound: the hub cluster fills up instantly; leaves stay
  // singleton without two-hop matching, and get pair-matched with it.
  std::vector<std::vector<NodeID>> adjacency(101);
  for (NodeID leaf = 1; leaf <= 100; ++leaf) {
    adjacency[0].push_back(leaf);
    adjacency[leaf].push_back(0);
  }
  const CsrGraph graph = graph_from_adjacency_unweighted(adjacency);
  const NodeWeight bound = 2;

  LpClusteringConfig without;
  without.two_hop = false;
  LpClusteringConfig with;
  with.two_hop = true;

  const NodeID clusters_without = count_clusters(lp_cluster(graph, without, bound, 3));
  const NodeID clusters_with = count_clusters(lp_cluster(graph, with, bound, 3));
  EXPECT_LT(clusters_with, clusters_without);
  // Pairing should roughly halve the leaf clusters.
  EXPECT_LE(clusters_with, clusters_without / 2 + 10);
}

TEST(LpClustering, IsolatedVerticesGetChainMatched) {
  const CsrGraph graph = graph_from_adjacency_unweighted({{}, {}, {}, {}, {}, {}});
  LpClusteringConfig config;
  const auto clustering = lp_cluster(graph, config, 2, 1);
  EXPECT_LE(count_clusters(clustering), 3u);
}

TEST(LpClustering, CompressedGraphYieldsValidClustering) {
  const CsrGraph graph = gen::weblike(1500, 18, 13);
  const CompressedGraph compressed = compress_graph(graph);
  LpClusteringConfig config;
  const NodeWeight bound = std::max<NodeWeight>(1, graph.total_node_weight() / 64);
  const auto clustering = lp_cluster(compressed, config, bound, 5);
  expect_valid_clustering(graph, clustering, bound);
  EXPECT_LT(count_clusters(clustering), graph.n());
}

TEST(LpClustering, DeterministicSingleThreaded) {
  par::set_num_threads(1);
  const CsrGraph graph = gen::rgg2d(600, 10, 17);
  LpClusteringConfig config;
  const auto a = lp_cluster(graph, config, 50, 123);
  const auto b = lp_cluster(graph, config, 50, 123);
  EXPECT_EQ(a, b);
  const auto c = lp_cluster(graph, config, 50, 124);
  EXPECT_NE(a, c);
}

TEST(LpClustering, StatsAreReported) {
  const CsrGraph graph = gen::rgg2d(500, 10, 4);
  LpClusteringConfig config;
  LpClusteringStats stats;
  const auto clustering = lp_cluster(graph, config, 100, 5, &stats);
  EXPECT_GT(stats.moves, 0u);
  EXPECT_EQ(stats.num_clusters, count_clusters(clustering));
}

} // namespace
} // namespace terapart
