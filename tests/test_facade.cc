// Tests for the public API facade: ContextBuilder validation, Partitioner /
// partition_graph parity, progress reporting, and cooperative cancellation.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <utility>
#include <vector>

#include "generators/generators.h"
#include "parallel/thread_pool.h"
#include "partition/facade.h"
#include "partition/metrics.h"
#include "terapart.h" // the umbrella shim must keep compiling

namespace terapart {
namespace {

TEST(ContextBuilder, AcceptsTheDefaults) {
  const auto result = ContextBuilder().k(4).build();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().k, 4u);
  EXPECT_EQ(result.value().name, "terapart");
}

TEST(ContextBuilder, PresetsMatchTheFreeFunctions) {
  const auto kaminpar = ContextBuilder(Preset::kKaMinPar).k(8).seed(3).build();
  ASSERT_TRUE(kaminpar.ok());
  EXPECT_FALSE(kaminpar.value().coarsening.lp.two_phase);
  EXPECT_FALSE(kaminpar.value().coarsening.contraction.one_pass);

  const auto fm = ContextBuilder(Preset::kTeraPartFm).k(8).build();
  ASSERT_TRUE(fm.ok());
  EXPECT_TRUE(fm.value().use_fm);
  EXPECT_TRUE(fm.value().coarsening.contraction.one_pass);
}

TEST(ContextBuilder, RejectsTooFewBlocks) {
  const auto result = ContextBuilder().k(1).build();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().field, "k");
  // The message must be actionable: it names the bad value and the bound.
  EXPECT_NE(result.error().message.find("got 1"), std::string::npos);
  EXPECT_NE(result.error().message.find("k >= 2"), std::string::npos);
}

TEST(ContextBuilder, RejectsNegativeAndNonFiniteEpsilon) {
  const auto negative = ContextBuilder().k(4).epsilon(-0.1).build();
  ASSERT_FALSE(negative.ok());
  EXPECT_EQ(negative.error().field, "epsilon");

  const auto nan = ContextBuilder().k(4).epsilon(std::nan("")).build();
  ASSERT_FALSE(nan.ok());
  EXPECT_EQ(nan.error().field, "epsilon");
}

TEST(ContextBuilder, RejectsZeroBumpThreshold) {
  const auto result = ContextBuilder().k(4).bump_threshold(0).build();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().field, "bump_threshold");
  EXPECT_NE(result.error().message.find("> 0"), std::string::npos);
}

TEST(ContextBuilder, RejectsNegativeThreads) {
  const auto result = ContextBuilder().k(4).threads(-2).build();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().field, "threads");
}

TEST(ContextBuilder, ErrorToStringNamesTheField) {
  const auto result = ContextBuilder().k(0).build();
  ASSERT_FALSE(result.ok());
  const std::string text = result.error().to_string();
  EXPECT_NE(text.find("invalid configuration"), std::string::npos);
  EXPECT_NE(text.find("k"), std::string::npos);
}

TEST(ContextBuilder, IsReusableAfterBuild) {
  ContextBuilder builder;
  ASSERT_FALSE(builder.k(1).build().ok());
  ASSERT_TRUE(builder.k(4).build().ok());
}

// The old free function and the new facade must be interchangeable: same
// graph, same context, same seed => identical partition. Run at one thread,
// where the pipeline is deterministic.
TEST(FacadeParity, PartitionerMatchesPartitionGraph) {
  par::set_num_threads(1);
  const CsrGraph graph = gen::rgg2d(2'000, 16, /*seed=*/5);

  auto built = ContextBuilder(Preset::kTeraPart).k(8).seed(7).build();
  ASSERT_TRUE(built.ok());
  const Context ctx = std::move(built).value();

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  const PartitionResult via_shim = partition_graph(graph, ctx);
#pragma GCC diagnostic pop
  const PartitionResult via_facade = Partitioner(ctx).partition(graph);

  EXPECT_EQ(via_shim.cut, via_facade.cut);
  ASSERT_EQ(via_shim.partition.size(), via_facade.partition.size());
  EXPECT_EQ(via_shim.partition, via_facade.partition);
}

TEST(FacadeParity, CompressedInputMatchesToo) {
  par::set_num_threads(1);
  const CsrGraph graph = gen::rgg2d(1'500, 12, /*seed=*/9);
  const CompressedGraph compressed = compress_graph_parallel(graph);

  auto built = ContextBuilder(Preset::kTeraPart).k(4).seed(3).build();
  ASSERT_TRUE(built.ok());
  const Context ctx = std::move(built).value();

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  const PartitionResult via_shim = partition_graph(compressed, ctx);
#pragma GCC diagnostic pop
  const PartitionResult via_facade = Partitioner(ctx).partition(compressed);
  EXPECT_EQ(via_shim.partition, via_facade.partition);
}

TEST(FacadeThreads, PartitionerAppliesContextThreads) {
  par::set_num_threads(1);
  auto built = ContextBuilder().k(4).threads(3).build();
  ASSERT_TRUE(built.ok());
  const Partitioner partitioner(std::move(built).value());
  const CsrGraph graph = gen::grid2d(40, 40);
  (void)partitioner.partition(graph);
  EXPECT_EQ(par::num_threads(), 3);
  par::set_num_threads(1);
}

TEST(Progress, CallbackSeesMonotoneCompletionUpToOne) {
  par::set_num_threads(1);
  std::vector<ProgressEvent> events;
  auto built = ContextBuilder()
                   .k(4)
                   .progress([&](const ProgressEvent &event) { events.push_back(event); })
                   .build();
  ASSERT_TRUE(built.ok());
  const CsrGraph graph = gen::grid2d(60, 60);
  const PartitionResult result = Partitioner(std::move(built).value()).partition(graph);
  ASSERT_FALSE(result.cancelled);

  ASSERT_GE(events.size(), 3u) << "coarsening, initial partitioning, >=1 refinement";
  EXPECT_EQ(events.front().stage, "coarsening");
  std::size_t previous = 0;
  for (const ProgressEvent &event : events) {
    EXPECT_GT(event.completed, previous);
    EXPECT_LE(event.completed, event.total);
    previous = event.completed;
  }
  EXPECT_EQ(events.back().completed, events.back().total);
  EXPECT_DOUBLE_EQ(events.back().fraction(), 1.0);
}

TEST(Cancellation, InertTokenNeverFires) {
  const CancellationToken token;
  EXPECT_FALSE(token.stop_requested());
  token.request_stop(); // no-op on an inert token
  EXPECT_FALSE(token.stop_requested());
}

TEST(Cancellation, TokenSharedStateFires) {
  const CancellationToken token = CancellationToken::create();
  const CancellationToken copy = token;
  EXPECT_FALSE(copy.stop_requested());
  token.request_stop();
  EXPECT_TRUE(copy.stop_requested());
}

TEST(Cancellation, PreCancelledRunReturnsFlaggedPartialResult) {
  par::set_num_threads(1);
  const CancellationToken token = CancellationToken::create();
  token.request_stop();
  auto built = ContextBuilder().k(4).cancel(token).build();
  ASSERT_TRUE(built.ok());

  const CsrGraph graph = gen::grid2d(50, 50);
  const PartitionResult result = Partitioner(std::move(built).value()).partition(graph);
  EXPECT_TRUE(result.cancelled);
  // Partial but valid: every vertex has a block id in range.
  ASSERT_EQ(result.partition.size(), graph.n());
  for (const BlockID block : result.partition) {
    EXPECT_LT(block, 4u);
  }
}

TEST(Cancellation, MidRunCancelStillProjectsToInputGraph) {
  par::set_num_threads(1);
  const CancellationToken token = CancellationToken::create();
  // Cancel from inside the progress callback once refinement begins — the
  // driver must notice at the next level boundary and fold the current
  // coarse partition down to the input graph.
  auto built = ContextBuilder()
                   .k(4)
                   .cancel(token)
                   .progress([&](const ProgressEvent &event) {
                     if (event.stage == "refinement") {
                       token.request_stop();
                     }
                   })
                   .build();
  ASSERT_TRUE(built.ok());

  const CsrGraph graph = gen::rgg2d(4'000, 16, /*seed=*/2);
  const PartitionResult result = Partitioner(std::move(built).value()).partition(graph);
  ASSERT_EQ(result.partition.size(), graph.n());
  for (const BlockID block : result.partition) {
    EXPECT_LT(block, 4u);
  }
  if (result.num_levels > 1) {
    EXPECT_TRUE(result.cancelled);
  }
  // The reported metrics describe the partial partition faithfully.
  EXPECT_EQ(result.cut, metrics::edge_cut(graph, result.partition));
}

} // namespace
} // namespace terapart
