// Tests for the partition metrics.
#include <gtest/gtest.h>

#include "compression/encoder.h"
#include "generators/generators.h"
#include "graph/graph_builder.h"
#include "partition/metrics.h"

namespace terapart {
namespace {

TEST(Metrics, EdgeCutHandComputed) {
  // Path 0-1-2-3 split as {0,1} | {2,3}: exactly edge 1-2 is cut.
  const CsrGraph graph = graph_from_adjacency_unweighted({{1}, {0, 2}, {1, 3}, {2}});
  const std::vector<BlockID> partition = {0, 0, 1, 1};
  EXPECT_EQ(metrics::edge_cut(graph, partition), 1);

  const std::vector<BlockID> all_same = {0, 0, 0, 0};
  EXPECT_EQ(metrics::edge_cut(graph, all_same), 0);

  const std::vector<BlockID> alternating = {0, 1, 0, 1};
  EXPECT_EQ(metrics::edge_cut(graph, alternating), 3);
}

TEST(Metrics, EdgeCutWeighted) {
  const CsrGraph graph = graph_from_adjacency({{{1, 5}}, {{0, 5}, {2, 7}}, {{1, 7}}});
  const std::vector<BlockID> partition = {0, 0, 1};
  EXPECT_EQ(metrics::edge_cut(graph, partition), 7);
}

TEST(Metrics, EdgeCutOnCompressedMatchesCsr) {
  const CsrGraph graph = gen::rgg2d(500, 10, 3);
  const CompressedGraph compressed = compress_graph(graph);
  std::vector<BlockID> partition(graph.n());
  for (NodeID u = 0; u < graph.n(); ++u) {
    partition[u] = u % 3;
  }
  EXPECT_EQ(metrics::edge_cut(graph, partition), metrics::edge_cut(compressed, partition));
}

TEST(Metrics, MaxBlockWeight) {
  EXPECT_EQ(metrics::max_block_weight(100, 4, 0.0), 25);
  EXPECT_EQ(metrics::max_block_weight(100, 4, 0.04), 26);
  EXPECT_EQ(metrics::max_block_weight(101, 4, 0.0), 26); // ceil
}

TEST(Metrics, ImbalanceAndBalanced) {
  const std::vector<BlockWeight> perfect = {25, 25, 25, 25};
  EXPECT_DOUBLE_EQ(metrics::imbalance(perfect, 100), 0.0);
  EXPECT_TRUE(metrics::is_balanced(perfect, 100, 4, 0.0));

  const std::vector<BlockWeight> skewed = {30, 24, 23, 23};
  EXPECT_NEAR(metrics::imbalance(skewed, 100), 0.2, 1e-9);
  EXPECT_FALSE(metrics::is_balanced(skewed, 100, 4, 0.03));
  EXPECT_TRUE(metrics::is_balanced(skewed, 100, 4, 0.25));
}

TEST(Metrics, BlockWeightsRespectNodeWeights) {
  GraphBuilder builder(3);
  builder.add_edge(0, 1);
  builder.add_edge(1, 2);
  builder.set_node_weights({10, 20, 30});
  const CsrGraph graph = builder.build();
  const std::vector<BlockID> partition = {0, 1, 0};
  const auto weights = metrics::block_weights(graph, partition, 2);
  EXPECT_EQ(weights[0], 40);
  EXPECT_EQ(weights[1], 20);
}

} // namespace
} // namespace terapart
