// Tests for the asynchronous distributed message layer: the buffered channel
// (batching, visibility, quiescence, deterministic drain), the typed varint
// wire codecs, the mailbox contract fixes, and the regression tests of the
// distributed-layer bug sweep (CommStats clobber, racy RNG seed factory).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "common/random.h"
#include "distributed/dist_lp.h"
#include "distributed/dist_partitioner.h"
#include "distributed/wire.h"
#include "generators/generators.h"
#include "parallel/thread_local_storage.h"
#include "parallel/thread_pool.h"
#include "partition/metrics.h"

namespace terapart::dist {
namespace {

// --- Mailbox contract (satellite fixes) ---

TEST(MailboxDeathTest, SendBulkRejectsOutOfRangeRanks) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mailbox<int> mailbox(2);
  EXPECT_DEATH(mailbox.send_bulk(0, 2, {1, 2}), "");
  EXPECT_DEATH(mailbox.send_bulk(-1, 0, {1}), "");
  EXPECT_DEATH(mailbox.send_bulk(2, 0, {1}), "");
}

TEST(Mailbox, SendBulkAppendsToExistingQueue) {
  Mailbox<int> mailbox(2);
  mailbox.send(0, 1, 7);
  mailbox.send_bulk(0, 1, {8, 9});
  mailbox.exchange();
  std::vector<int> got;
  mailbox.for_each_received(1, [&](int, const int m) { got.push_back(m); });
  EXPECT_EQ(got, (std::vector<int>{7, 8, 9}));
  EXPECT_EQ(mailbox.messages_delivered(), 3u);
  // The mailbox ships raw structs: its wire bytes are struct bytes.
  EXPECT_EQ(mailbox.bytes_delivered(), 3 * sizeof(int));
}

// --- BufferedChannel semantics ---

TEST(BufferedChannel, SyncModeMatchesMailboxFinalState) {
  constexpr int kRanks = 4;
  constexpr NodeID kKeys = 50;
  Mailbox<Update> mailbox(kRanks);
  GhostChannel channel(kRanks, {});

  Random rng = Random::stream(123, 0);
  for (int i = 0; i < 1000; ++i) {
    const int src = static_cast<int>(rng.next_bounded(kRanks));
    const int dst = static_cast<int>(rng.next_bounded(kRanks));
    const Update update{static_cast<NodeID>(rng.next_bounded(kKeys)),
                        static_cast<std::uint32_t>(rng.next_bounded(1 << 20))};
    mailbox.send(src, dst, update);
    channel.send(src, dst, update);
  }
  EXPECT_EQ(channel.messages_sent(), 1000u);

  mailbox.exchange();
  channel.flush_all();
  for (int dst = 0; dst < kRanks; ++dst) {
    std::map<NodeID, std::uint32_t> expected;
    mailbox.for_each_received(
        dst, [&](int, const Update &update) { expected[update.global] = update.value; });
    std::map<NodeID, std::uint32_t> actual;
    channel.drain(dst, [&](int, const Update &update) { actual[update.global] = update.value; });
    EXPECT_EQ(actual, expected) << "rank " << dst;
  }
  EXPECT_TRUE(channel.quiescent());
  // The codec compresses: encoded volume stays below the struct volume.
  EXPECT_LT(channel.bytes_delivered(), channel.logical_bytes());
}

TEST(BufferedChannel, CapacityFlushIsEagerOnlyInAsyncMode) {
  DistCommConfig async_config;
  async_config.async = true;
  async_config.flush_threshold = 4;
  GhostChannel async_channel(2, async_config);
  for (std::uint32_t i = 0; i < 8; ++i) {
    async_channel.send(0, 1, {i, i});
  }
  EXPECT_EQ(async_channel.capacity_flushes(), 2u);
  EXPECT_EQ(async_channel.batches_flushed(), 2u);
  // Eager visibility: both batches drainable before any terminator.
  EXPECT_EQ(async_channel.drain(1, [](int, const Update &) {}), 8u);
  EXPECT_TRUE(async_channel.quiescent());

  DistCommConfig sync_config;
  sync_config.flush_threshold = 4;
  GhostChannel sync_channel(2, sync_config);
  for (std::uint32_t i = 0; i < 8; ++i) {
    sync_channel.send(0, 1, {i, i});
  }
  EXPECT_EQ(sync_channel.capacity_flushes(), 0u);
  // Superstep schedule: nothing visible until the flush_all barrier.
  EXPECT_EQ(sync_channel.drain(1, [](int, const Update &) {}), 0u);
  sync_channel.flush_all();
  EXPECT_EQ(sync_channel.batches_flushed(), 1u); // one batch per (src, dst)
  EXPECT_EQ(sync_channel.drain(1, [](int, const Update &) {}), 8u);
  EXPECT_TRUE(sync_channel.quiescent());
}

TEST(BufferedChannel, StragglerKeepsChannelNonQuiescent) {
  GhostChannel channel(3, {});
  channel.send(0, 1, {5, 1});
  channel.send(2, 1, {6, 2});
  EXPECT_FALSE(channel.quiescent());
  channel.flush(0); // rank 2 is the straggler: buffered but unflushed
  EXPECT_FALSE(channel.quiescent());
  EXPECT_EQ(channel.drain(1, [](int, const Update &) {}), 0u); // sync: not visible yet
  channel.flush_all();                                         // terminator catches it
  EXPECT_EQ(channel.drain(1, [](int, const Update &) {}), 2u);
  EXPECT_TRUE(channel.quiescent());
}

TEST(BufferedChannel, DeterministicDrainIsIndependentOfBatchBoundaries) {
  // The same send history under wildly different capacity-flush schedules
  // must produce the same final receiver state: deterministic drain applies
  // batches sorted by (src, seq), so per-src order equals send order.
  const auto run = [](const std::size_t threshold, const bool async) {
    DistCommConfig config;
    config.async = async;
    config.flush_threshold = threshold;
    GhostChannel channel(3, config);
    Random rng = Random::stream(77, 1);
    for (int i = 0; i < 500; ++i) {
      const int src = static_cast<int>(rng.next_bounded(3));
      channel.send(src, 0,
                   {static_cast<NodeID>(rng.next_bounded(40)),
                    static_cast<std::uint32_t>(rng.next_bounded(1 << 16))});
    }
    channel.flush_all();
    std::map<NodeID, std::uint32_t> state;
    channel.drain(0, [&](int, const Update &update) { state[update.global] = update.value; });
    EXPECT_TRUE(channel.quiescent());
    return state;
  };
  const auto reference = run(1 << 20, false); // one batch per pair: mailbox shape
  EXPECT_EQ(run(1, true), reference);
  EXPECT_EQ(run(3, true), reference);
  EXPECT_EQ(run(7, true), reference);
  EXPECT_EQ(run(256, true), reference);
}

// --- Wire codecs ---

TEST(GhostUpdateCodec, RoundTripsWithLastWriterWinsDedup) {
  std::vector<Update> batch = {{7, 1}, {3, 2}, {7, 9}, {0, 4}, {3, 5}, {7, 11}};
  std::vector<std::uint8_t> out;
  std::size_t wire_size = 0;
  const std::uint32_t count = GhostUpdateCodec::encode(batch, out, wire_size);
  ASSERT_EQ(count, 3u);
  EXPECT_LT(wire_size, out.size()); // sealed: padding past the payload

  std::vector<Update> decoded;
  GhostUpdateCodec::decode(out.data(), count,
                           [&](const Update &update) { decoded.push_back(update); });
  ASSERT_EQ(decoded.size(), 3u);
  EXPECT_EQ(decoded[0].global, 0u);
  EXPECT_EQ(decoded[0].value, 4u);
  EXPECT_EQ(decoded[1].global, 3u);
  EXPECT_EQ(decoded[1].value, 5u); // last writer of key 3
  EXPECT_EQ(decoded[2].global, 7u);
  EXPECT_EQ(decoded[2].value, 11u); // last writer of key 7
}

TEST(GhostUpdateCodec, HandlesExtremeKeysAndValues) {
  // Delta/gap edge cases: adjacent keys, a 2^31 jump, and the top of the
  // 32-bit range, with values up to UINT32_MAX.
  const std::vector<Update> original = {{0u, 0u},
                                        {1u, 0xFFFF'FFFFu},
                                        {0x8000'0000u, 123u},
                                        {0xFFFF'FFFEu, 7u},
                                        {0xFFFF'FFFFu, 0xFFFF'FFFFu}};
  std::vector<Update> batch = original;
  std::vector<std::uint8_t> out;
  std::size_t wire_size = 0;
  const std::uint32_t count = GhostUpdateCodec::encode(batch, out, wire_size);
  ASSERT_EQ(count, original.size());

  std::vector<Update> decoded;
  GhostUpdateCodec::decode(out.data(), count,
                           [&](const Update &update) { decoded.push_back(update); });
  ASSERT_EQ(decoded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(decoded[i].global, original[i].global) << i;
    EXPECT_EQ(decoded[i].value, original[i].value) << i;
  }
}

TEST(WireCodecs, ContractionCodecsRoundTrip) {
  { // WeightMsg: stable sort by leader, duplicates preserved (they sum later).
    std::vector<WeightMsg> batch = {{10, 1'000'000'007LL}, {2, 5}, {10, 3}};
    std::vector<std::uint8_t> out;
    std::size_t wire_size = 0;
    const std::uint32_t count = WeightMsgCodec::encode(batch, out, wire_size);
    ASSERT_EQ(count, 3u);
    std::vector<WeightMsg> decoded;
    WeightMsgCodec::decode(out.data(), count,
                           [&](const WeightMsg &msg) { decoded.push_back(msg); });
    ASSERT_EQ(decoded.size(), 3u);
    EXPECT_EQ(decoded[0].leader, 2u);
    EXPECT_EQ(decoded[0].weight, 5);
    EXPECT_EQ(decoded[1].leader, 10u);
    EXPECT_EQ(decoded[1].weight, 1'000'000'007LL);
    EXPECT_EQ(decoded[2].leader, 10u);
    EXPECT_EQ(decoded[2].weight, 3);
  }
  { // QueryMsg: a bare key stream.
    std::vector<QueryMsg> batch = {{99}, {0}, {0xFFFF'FFFFu}};
    std::vector<std::uint8_t> out;
    std::size_t wire_size = 0;
    const std::uint32_t count = QueryMsgCodec::encode(batch, out, wire_size);
    std::vector<NodeID> decoded;
    QueryMsgCodec::decode(out.data(), count,
                          [&](const QueryMsg &msg) { decoded.push_back(msg.leader); });
    EXPECT_EQ(decoded, (std::vector<NodeID>{0u, 99u, 0xFFFF'FFFFu}));
  }
  { // ResolveMsg: one packed run of 2*count values (coarse IDs then weights).
    std::vector<ResolveMsg> batch = {{5, 1, 10}, {1, 0, 20}, {9, 2, 0x7FFF'FFFF'FFFFLL}};
    std::vector<std::uint8_t> out;
    std::size_t wire_size = 0;
    const std::uint32_t count = ResolveMsgCodec::encode(batch, out, wire_size);
    std::vector<ResolveMsg> decoded;
    ResolveMsgCodec::decode(out.data(), count,
                            [&](const ResolveMsg &msg) { decoded.push_back(msg); });
    ASSERT_EQ(decoded.size(), 3u);
    EXPECT_EQ(decoded[0].leader, 1u);
    EXPECT_EQ(decoded[0].coarse_global, 0u);
    EXPECT_EQ(decoded[0].weight, 20);
    EXPECT_EQ(decoded[2].leader, 9u);
    EXPECT_EQ(decoded[2].coarse_global, 2u);
    EXPECT_EQ(decoded[2].weight, 0x7FFF'FFFF'FFFFLL);
  }
  { // EdgeMsg: sorted by (coarse_u, coarse_v).
    std::vector<EdgeMsg> batch = {{4, 9, 2}, {1, 7, 3}, {4, 2, 5}};
    std::vector<std::uint8_t> out;
    std::size_t wire_size = 0;
    const std::uint32_t count = EdgeMsgCodec::encode(batch, out, wire_size);
    std::vector<EdgeMsg> decoded;
    EdgeMsgCodec::decode(out.data(), count,
                         [&](const EdgeMsg &msg) { decoded.push_back(msg); });
    ASSERT_EQ(decoded.size(), 3u);
    EXPECT_EQ(decoded[0].coarse_u, 1u);
    EXPECT_EQ(decoded[0].coarse_v, 7u);
    EXPECT_EQ(decoded[1].coarse_u, 4u);
    EXPECT_EQ(decoded[1].coarse_v, 2u);
    EXPECT_EQ(decoded[1].weight, 5);
    EXPECT_EQ(decoded[2].coarse_u, 4u);
    EXPECT_EQ(decoded[2].coarse_v, 9u);
    EXPECT_EQ(decoded[2].weight, 2);
  }
}

// --- Regression: CommStats clobber (dist_lp.cc used to assign `messages`) ---

TEST(CommStats, AccumulateSumsEveryField) {
  CommStats a;
  a.supersteps = 1;
  a.messages = 2;
  a.bytes = 3;
  a.wire_bytes = 4;
  a.batches = 5;
  a.capacity_flushes = 6;
  a.delivered = 7;
  a.early_messages = 8;
  CommStats b = a;
  b.accumulate(a);
  EXPECT_EQ(b.supersteps, 2u);
  EXPECT_EQ(b.messages, 4u);
  EXPECT_EQ(b.bytes, 6u);
  EXPECT_EQ(b.wire_bytes, 8u);
  EXPECT_EQ(b.batches, 10u);
  EXPECT_EQ(b.capacity_flushes, 12u);
  EXPECT_EQ(b.delivered, 14u);
  EXPECT_EQ(b.early_messages, 16u);
}

TEST(CommStats, ClusteringAccumulatesIntoExistingStats) {
  // Regression: dist_lp_cluster used to *assign* mailbox counters into the
  // caller's stats, silently discarding everything a previous phase had
  // recorded. Pre-seed the accumulator and require monotone growth.
  const CsrGraph graph = gen::rgg2d(800, 10, 3);
  const auto parts = distribute_graph(graph, 4);
  DistLpConfig config;
  CommStats stats;
  constexpr std::uint64_t kPreSeeded = 1'000'000'000'000ULL;
  stats.messages = kPreSeeded;
  stats.bytes = kPreSeeded;
  const auto labels =
      dist_lp_cluster(parts, config, graph.total_node_weight() / 32, 5, stats);
  (void)labels;
  EXPECT_GT(stats.messages, kPreSeeded) << "phase must += its message count";
  EXPECT_GT(stats.bytes, kPreSeeded) << "phase must += its byte count";
}

// --- Regression: racy RNG seed factory (shared mutable counter capture) ---

TEST(ThreadLocalStorage, IndexedFactoryReceivesStableSlotIndex) {
  const int previous = par::num_threads();
  par::set_num_threads(4);
  par::ThreadLocal<int> slots([](const int t) { return 100 + t; });
  ASSERT_EQ(slots.size(), 4u);
  for (int t = 0; t < 4; ++t) {
    EXPECT_EQ(slots.get(t), 100 + t);
  }
  // The RNG-stream use case: per-slot streams must be pairwise distinct and
  // tied to the slot index, not to construction order.
  par::ThreadLocal<Random> rngs([](const int t) {
    return Random::stream(42, static_cast<std::uint64_t>(t));
  });
  std::vector<std::uint64_t> first_draws;
  rngs.for_each([&](Random &rng) { first_draws.push_back(rng.next_bounded(1u << 30)); });
  std::sort(first_draws.begin(), first_draws.end());
  EXPECT_EQ(std::adjacent_find(first_draws.begin(), first_draws.end()), first_draws.end())
      << "slot streams must be distinct";
  par::set_num_threads(previous);
}

// --- Async LP: overlap, consistency, reproducibility ---

TEST(DistLpAsync, AsyncClusteringKeepsGhostsConsistentAndBounded) {
  const CsrGraph graph = gen::rgg2d(800, 10, 3);
  const auto parts = distribute_graph(graph, 4);
  DistLpConfig config;
  config.comm.async = true;
  config.comm.flush_threshold = 4;
  CommStats stats;
  const NodeWeight bound = graph.total_node_weight() / 32;
  const auto labels = dist_lp_cluster(parts, config, bound, 5, stats);

  // Ghost copies agree with the owner after the terminator.
  for (const DistGraph &part : parts) {
    const auto &local = labels[static_cast<std::size_t>(part.rank)];
    for (NodeID g = 0; g < part.num_ghosts(); ++g) {
      const NodeID global = part.ghost_global[g];
      const DistGraph &owner = parts[static_cast<std::size_t>(part.owner_of_global(global))];
      const auto &owner_labels = labels[static_cast<std::size_t>(owner.rank)];
      ASSERT_EQ(local[part.local_n + g], owner_labels[global - owner.first_global])
          << "stale ghost label for " << global;
    }
  }
  // Cluster weights respect the bound (recomputed globally).
  std::map<ClusterID, NodeWeight> weights;
  for (const DistGraph &part : parts) {
    const auto &local = labels[static_cast<std::size_t>(part.rank)];
    for (NodeID u = 0; u < part.local_n; ++u) {
      weights[local[u]] += part.node_weight(u);
    }
  }
  for (const auto &[cluster, weight] : weights) {
    ASSERT_LE(weight, bound) << "cluster " << cluster;
  }
  // The async layer actually overlapped: some deliveries happened mid-sweep.
  EXPECT_GT(stats.early_messages, 0u);
  EXPECT_GT(stats.capacity_flushes, 0u);
}

TEST(DistLpAsync, AsyncClusteringIsReproducible) {
  const CsrGraph graph = gen::rhg(700, 10, 3.0, 11);
  const auto parts = distribute_graph(graph, 4);
  DistLpConfig config;
  config.comm.async = true;
  config.comm.flush_threshold = 8;
  const NodeWeight bound = graph.total_node_weight() / 16;
  CommStats stats_a;
  CommStats stats_b;
  const auto labels_a = dist_lp_cluster(parts, config, bound, 9, stats_a);
  const auto labels_b = dist_lp_cluster(parts, config, bound, 9, stats_b);
  EXPECT_EQ(labels_a, labels_b) << "deterministic drain must reproduce the run";
  EXPECT_EQ(stats_a.messages, stats_b.messages);
  EXPECT_EQ(stats_a.wire_bytes, stats_b.wire_bytes);
}

// --- End-to-end: wire-volume acceptance + cut parity band ---

TEST(DistPartitionComm, AsyncCompressionAndCutParity) {
  const CsrGraph graph = gen::rgg2d(3000, 12, 3);
  const Context ctx = terapart_context(8, 7);
  DistCommConfig async_comm;
  async_comm.async = true;
  const DistPartitionResult sync_run = dist_partition(graph, 8, ctx, false);
  const DistPartitionResult async_run = dist_partition(graph, 8, ctx, false, async_comm);

  EXPECT_TRUE(async_run.balanced) << "imbalance " << async_run.imbalance;
  ASSERT_GT(async_run.comm.wire_bytes, 0u);
  // Acceptance: the varint wire format carries >= 1.3x less volume than the
  // logical struct bytes the old mailbox accounted.
  EXPECT_GE(async_run.comm.bytes * 10, async_run.comm.wire_bytes * 13)
      << "wire ratio " << async_run.comm.wire_ratio();
  // Edge-cut parity band between the transports.
  EXPECT_LT(async_run.cut, 2 * sync_run.cut + 100);
  EXPECT_LT(sync_run.cut, 2 * async_run.cut + 100);
  // Per-phase split sums to the totals.
  CommStats summed;
  summed.accumulate(async_run.comm_coarsening);
  summed.accumulate(async_run.comm_contraction);
  summed.accumulate(async_run.comm_refinement);
  EXPECT_EQ(summed.messages, async_run.comm.messages);
  EXPECT_EQ(summed.wire_bytes, async_run.comm.wire_bytes);
}

} // namespace
} // namespace terapart::dist
