// Deeper distributed-layer tests: multi-level distributed hierarchies
// (repeated cluster + contract), cross-checks against the shared-memory
// pipeline, degenerate rank counts, and message-volume sanity.
#include <gtest/gtest.h>

#include <set>

#include "distributed/dist_contraction.h"
#include "distributed/dist_partitioner.h"
#include "generators/generators.h"
#include "graph/graph_builder.h"
#include "graph/validation.h"
#include "partition/metrics.h"
#include "partition/partitioner.h"
#include "partition/facade.h"

namespace terapart::dist {
namespace {

TEST(DistMultiLevel, TwoLevelsOfDistributedCoarsening) {
  const CsrGraph graph = gen::rgg2d(3000, 12, 3);
  auto parts = distribute_graph(graph, 4);
  CommStats stats;
  DistLpConfig config;

  // Level 0.
  const auto labels0 =
      dist_lp_cluster(parts, config, graph.total_node_weight() / 32, 1, stats);
  DistContractionResult level0 = dist_contract(parts, labels0, stats);
  ASSERT_LT(level0.coarse_global_n, graph.n());

  // Level 1: cluster and contract the *coarse distributed* graph.
  const CsrGraph coarse0 = gather_graph(level0.coarse);
  const auto labels1 =
      dist_lp_cluster(level0.coarse, config, graph.total_node_weight() / 8, 2, stats);
  DistContractionResult level1 = dist_contract(level0.coarse, labels1, stats);
  ASSERT_LE(level1.coarse_global_n, level0.coarse_global_n);

  // Weight conservation holds through both levels.
  const CsrGraph coarse1 = gather_graph(level1.coarse);
  expect_valid_graph(coarse1);
  EXPECT_EQ(coarse1.total_node_weight(), graph.total_node_weight());
  EXPECT_EQ(coarse0.total_node_weight(), graph.total_node_weight());

  // Composed mappings land in range.
  for (const DistGraph &part : parts) {
    const auto &mapping0 = level0.mapping[static_cast<std::size_t>(part.rank)];
    for (NodeID u = 0; u < part.local_n; ++u) {
      const NodeID c0 = mapping0[u];
      ASSERT_LT(c0, level0.coarse_global_n);
      // Find c0's owner at level 0 and map through level 1.
      const DistGraph &owner =
          level0.coarse[static_cast<std::size_t>(level0.coarse.front().owner_of_global(c0))];
      const auto &mapping1 = level1.mapping[static_cast<std::size_t>(owner.rank)];
      const NodeID c1 = mapping1[c0 - owner.first_global];
      ASSERT_LT(c1, level1.coarse_global_n);
    }
  }
}

TEST(DistMultiLevel, SingleRankMatchesSharedMemoryQualityClass) {
  // p=1 distributed runs the same multilevel structure without communication;
  // its quality must track the shared-memory partitioner.
  const CsrGraph graph = gen::rgg2d(4000, 12, 7);
  const Context ctx = terapart_context(8, 3);
  const DistPartitionResult dist = dist_partition(graph, 1, ctx, false);
  const PartitionResult shared = Partitioner(ctx).partition(graph);
  EXPECT_TRUE(dist.balanced);
  EXPECT_LT(dist.cut, 2 * shared.cut + 100);
  // With one rank all mailbox traffic is rank-0-to-rank-0 (owner aggregation
  // during contraction); like an MPI self-send it still counts as a message,
  // but no *ghost* label updates exist because there are no ghosts.
  EXPECT_EQ(dist.comm.supersteps > 0, true);
}

TEST(DistMultiLevel, ManyRanksOnATinyGraph) {
  // More ranks than "natural" work: some ranks own few vertices, exchange
  // still terminates and stays correct.
  const CsrGraph graph = gen::grid2d(12, 12);
  const Context ctx = terapart_context(4, 1);
  const DistPartitionResult result = dist_partition(graph, 8, ctx, false);
  ASSERT_EQ(result.partition.size(), graph.n());
  EXPECT_EQ(result.cut, metrics::edge_cut(graph, result.partition));
  EXPECT_TRUE(result.balanced);
}

TEST(DistMultiLevel, MessageVolumeGrowsWithRankCount) {
  const CsrGraph graph = gen::rhg(4000, 14, 3.0, 5);
  const Context ctx = terapart_context(8, 3);
  const DistPartitionResult two = dist_partition(graph, 2, ctx, false);
  const DistPartitionResult eight = dist_partition(graph, 8, ctx, false);
  // More ranks => more ghost boundaries => more label traffic.
  EXPECT_GT(eight.comm.messages, two.comm.messages);
}

TEST(DistMultiLevel, WeakScalingKeepsCutFractionStable) {
  // The Figure 8 property in miniature: growing graph with growing ranks
  // keeps the relative cut in the same band.
  const Context ctx = terapart_context(8, 3);
  double fractions[2];
  int index = 0;
  for (const int ranks : {2, 8}) {
    const CsrGraph graph = gen::rgg2d(1500 * static_cast<NodeID>(ranks), 12, 5);
    const DistPartitionResult result = dist_partition(graph, ranks, ctx, true);
    EXPECT_TRUE(result.balanced);
    fractions[index++] = static_cast<double>(result.cut) /
                         (static_cast<double>(graph.m()) / 2.0);
  }
  EXPECT_LT(fractions[1], 3 * fractions[0] + 0.05);
}

TEST(DistMultiLevel, GhostFreeGraphNeedsNoMessages) {
  // A graph whose components align with rank ranges has no ghosts at all.
  const int ranks = 4;
  const NodeID per_rank = 100;
  std::vector<std::vector<NodeID>> adjacency(per_rank * ranks);
  for (int r = 0; r < ranks; ++r) {
    const NodeID base = static_cast<NodeID>(r) * per_rank;
    for (NodeID i = 0; i + 1 < per_rank; ++i) {
      adjacency[base + i].push_back(base + i + 1);
      adjacency[base + i + 1].push_back(base + i);
    }
  }
  const CsrGraph graph = graph_from_adjacency_unweighted(adjacency);
  const auto parts = distribute_graph(graph, ranks);
  for (const DistGraph &part : parts) {
    EXPECT_EQ(part.num_ghosts(), 0u);
  }
}

} // namespace
} // namespace terapart::dist
